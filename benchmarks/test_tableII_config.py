"""Table II: the simulated system configuration.

Prints the configuration table and asserts every row matches the paper's
published parameters."""

from conftest import run_once

from repro.sim.config import TABLE_II


def render_table_ii() -> str:
    rows = TABLE_II.describe()
    width = max(len(k) for k in rows)
    lines = ["Table II: System Configuration"]
    lines += [f"  {k.ljust(width)}  {v}" for k, v in rows.items()]
    return "\n".join(lines)


def test_table_ii(benchmark, report):
    text = run_once(benchmark, render_table_ii)
    report("tableII", text)

    assert TABLE_II.cores == 32
    assert TABLE_II.frequency_ghz == 2.0
    assert TABLE_II.l1_size_kb == 32 and TABLE_II.l1_ways == 4
    assert TABLE_II.l2_size_mb == 8.0 and TABLE_II.l2_ways == 16
    assert TABLE_II.l2_access_latency == 8
    assert TABLE_II.l1_to_l2_latency == 4 and TABLE_II.l2_banks == 4
    assert TABLE_II.memory_latency == 200
    assert TABLE_II.memory_bandwidth_gbps == 32.0
    assert TABLE_II.l2_lines == 131_072

"""Ablation: futility ranking scheme under feedback FS.

The paper argues FS is conceptually independent of the ranking (Section
VI): it demonstrates the practical coarse-grain timestamp LRU and reports
OPT as the headroom.  This ablation runs feedback FS under four rankings —
coarse-TS LRU (hardware), exact LRU, LFU and OPT — on the same workload
and compares sizing error and the subject hit rate."""

from ablation_common import NUM_LINES, TARGETS, sizing_error
from conftest import run_once

from repro.cache.arrays import SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import make_ranking
from repro.core.schemes.futility_scaling import FeedbackFutilityScalingScheme
from repro.experiments.common import format_table
from repro.trace.mixing import run_round_robin
from repro.trace.spec import get_profile

RANKINGS = ("coarse-ts-lru", "lru", "lfu", "opt")
TRACE_LENGTH = 30_000
SCALE = 0.125


def run_sweep():
    rows = []
    for kind in RANKINGS:
        traces = [get_profile("gromacs").trace(TRACE_LENGTH, seed=1,
                                               addr_base=1 << 40,
                                               scale=SCALE),
                  get_profile("mcf").trace(TRACE_LENGTH, seed=2,
                                           addr_base=2 << 40, scale=SCALE)]
        cache = PartitionedCache(
            SetAssociativeArray(NUM_LINES, 16), make_ranking(kind),
            FeedbackFutilityScalingScheme(), 2, targets=list(TARGETS))
        run_round_robin(cache, traces, 2 * TRACE_LENGTH, warmup=10_000)
        rows.append((kind, sizing_error(cache), cache.stats.hit_rate(0),
                     cache.stats.aef(0)))
    return rows


def test_ablation_rankings(benchmark, report):
    rows = run_once(benchmark, run_sweep)
    report("ablation_rankings", format_table(
        ["ranking", "sizing err", "hit rate p0", "AEF p0"],
        [[k, f"{e:.3f}", f"{h:.3f}", f"{a:.3f}"] for k, e, h, a in rows],
        title="Ablation: futility ranking under feedback FS"))
    by = {k: (e, h, a) for k, e, h, a in rows}
    # FS enforces sizes under every ranking (ranking-independence).
    for kind, (err, _, _) in by.items():
        assert err < 0.25, kind
    # OPT is the performance ceiling among the rankings.
    assert by["opt"][1] >= by["coarse-ts-lru"][1] - 0.02
    # The hardware coarse-TS proxy tracks exact LRU closely.
    assert abs(by["coarse-ts-lru"][1] - by["lru"][1]) < 0.1
    benchmark.extra_info["hit_rates"] = {k: round(h, 3)
                                         for k, (e, h, a) in by.items()}

"""Figure 6: application associativity sensitivity (fully-associative vs
direct-mapped speedups) under OPT (6a) and LRU (6b) rankings.

Paper shapes asserted: mcf is strongly sensitive under OPT at every size;
gromacs is sensitive only below its working set; streaming lbm is flat
everywhere; LRU compresses all sensitivities; and cactusADM's
LRU-pathological scan makes full associativity *hurt* at the size just
below its loop (paper: -6% at 4MB)."""

from conftest import config_for, run_once

from repro.experiments import Fig6Config, format_fig6, run_fig6


def test_fig6(benchmark, report):
    config = config_for(Fig6Config)
    result = run_once(benchmark, run_fig6, config)
    report("fig6", format_fig6(result))

    sizes = config.cache_sizes_lines
    small, big = sizes[0], sizes[-1]

    if "opt" in config.rankings:
        # 6a: mcf sensitive at every size; lbm flat; gromacs big-to-flat.
        for size in sizes:
            assert result.speedup("opt", "lbm", size) < 1.05
        assert result.speedup("opt", "mcf", small) > 1.2
        assert result.speedup("opt", "gromacs", small) > \
            result.speedup("opt", "gromacs", big)
        assert result.speedup("opt", "gromacs", big) < 1.05

    if "lru" in config.rankings:
        # 6b: compressed vs OPT for the sensitive benchmarks.
        if "opt" in config.rankings:
            assert result.speedup("lru", "mcf", small) < \
                result.speedup("opt", "mcf", small)
        # cactusADM: higher associativity can hurt under LRU.
        if "cactusadm" in config.benchmarks and len(sizes) >= 3:
            worst = min(result.speedup("lru", "cactusadm", s) for s in sizes)
            assert worst < 1.0
        assert result.speedup("lru", "lbm", small) < 1.05
    benchmark.extra_info["mcf_opt_small"] = round(
        result.speedup(config.rankings[0], "mcf", small), 3)

"""Figure 2: PF's partitioning-induced associativity loss.

Regenerates all three panels — the associativity CDF/AEF of partition 1
for mcf (2a), and the misses (2b) and IPC (2c) of partition 1 for all
eight benchmarks, normalized to N=1 — as the number of equal partitions
grows.

Paper shapes asserted: AEF decays from ~0.95 toward the 0.5 worst case;
the associativity-sensitive benchmark's misses rise (paper: +37% for mcf
at N=32) and IPC falls (-24%); streaming lbm/libquantum are flat.
"""

from conftest import config_for, run_once

from repro.experiments import Fig2Config, format_fig2, run_fig2


def test_fig2(benchmark, report):
    config = config_for(Fig2Config)
    result = run_once(benchmark, run_fig2, config)
    report("fig2", format_fig2(result))

    series = result.points[config.cdf_benchmark]
    ns = sorted(series)
    aefs = [series[n].aef for n in ns]
    # 2a: monotone-ish associativity decay from near the analytic ceiling.
    assert aefs[0] > 0.85
    assert aefs[-1] < aefs[0] - 0.15
    benchmark.extra_info["aef_n1"] = round(aefs[0], 3)
    benchmark.extra_info["aef_max_n"] = round(aefs[-1], 3)

    # 2b/2c for the extreme benchmarks.
    top = ns[-1]
    if "mcf" in result.points:
        assert result.normalized_misses("mcf")[top] > 1.1
        assert result.normalized_ipc("mcf")[top] < 0.95
    if "lbm" in result.points:
        assert abs(result.normalized_misses("lbm")[top] - 1.0) < 0.1
        assert result.normalized_ipc("lbm")[top] > 0.95

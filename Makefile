# Convenience targets for the futility-scaling reproduction.

.PHONY: install test bench bench-smoke bench-paper bench-throughput \
	bench-regression figures figures-parallel report examples lint \
	lint-baseline typecheck check clean clean-cache telemetry-smoke \
	chaos-smoke scenario-smoke trace-smoke

# PYTHONPATH=src keeps every target usable from a bare checkout
# (no editable install required), matching the tier-1 test invocation.
PY := PYTHONPATH=src python

install:
	pip install -e . || python setup.py develop

# tests/runner/ exercises the worker pool (a --jobs 2 smoke-scale run
# byte-compared against --jobs 1) on every invocation.
test:
	pytest tests/

bench: bench-throughput
	pytest benchmarks/ --benchmark-only

# Re-measure per-scheme access throughput into BENCH_throughput.json
# (merges under the "after" label; run with BENCH_LABEL=before on a
# pre-change tree to refresh the baseline side).
bench-throughput:
	$(PY) benchmarks/test_simulator_throughput.py \
		--out BENCH_throughput.json --label $${BENCH_LABEL:-after}

# CI smoke: fail when access throughput regresses >30% below the
# committed BENCH_throughput.json (spin-calibrated across machines).
bench-regression:
	$(PY) -m pytest -q -p no:cacheprovider \
		benchmarks/test_simulator_throughput.py::test_benchmark_covers_every_scheme \
		benchmarks/test_simulator_throughput.py::test_throughput_regression

bench-smoke:
	REPRO_BENCH_SCALE=smoke pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only

# Local mirror of the CI telemetry job: record a smoke run, validate
# every JSONL artifact against repro.obs.schema, render the dashboard.
telemetry-smoke:
	rm -rf telemetry-run
	$(PY) -m repro.experiments fig3 --scale smoke --jobs 2 \
		--cache-dir telemetry-run/cache --telemetry=telemetry-run/obs
	$(PY) -m repro.experiments fig6 --scale smoke --jobs 2 \
		--cache-dir telemetry-run/cache --telemetry=telemetry-run/obs
	$(PY) -m repro.obs validate telemetry-run/obs/fig3
	$(PY) -m repro.obs validate telemetry-run/obs/fig6
	$(PY) -m repro.obs report telemetry-run/obs/fig6

# Local mirror of the CI scenario job: the lifecycle scenario suite
# (tenant churn + phase change) under telemetry, byte-compared across
# --jobs, with every artifact — including the new lifecycle/*.jsonl
# control-plane logs — validated against repro.obs.schema.
scenario-smoke:
	rm -rf scenario-run && mkdir -p scenario-run
	$(PY) -m repro.experiments scenarios --scale smoke --jobs 1 \
		--no-cache > scenario-run/baseline.out
	$(PY) -m repro.experiments scenarios --scale smoke --jobs 2 \
		--cache-dir scenario-run/cache \
		--telemetry=scenario-run/obs > scenario-run/telemetry.out
	cmp scenario-run/baseline.out scenario-run/telemetry.out
	$(PY) -m repro.obs validate scenario-run/obs/scenarios
	test -n "$$(ls scenario-run/obs/scenarios/lifecycle/*.jsonl)"

# Local mirror of the CI store-chaos job: a fig3 queue-worker run
# under injected store faults (lock contention, claim latency) plus a
# cell slower than its lease must print exactly the bytes a fault-free
# --jobs 1 run prints; the heartbeat keeps steals at zero.
chaos-smoke:
	rm -rf chaos-run && mkdir -p chaos-run
	$(PY) -m repro.experiments fig3 --jobs 1 \
		--cache-dir chaos-run/baseline > chaos-run/baseline.out
	REPRO_FAULTS='{"faults": [{"cell": "fig3[0.6]", "kind": "hang", "seconds": 2.0}]}' \
	REPRO_STORE_FAULTS='{"faults": [{"op": "*", "kind": "busy", "every": 3}, {"op": "claim", "kind": "latency", "seconds": 0.01}]}' \
	$(PY) -m repro.experiments fig3 --store sqlite:chaos-run/results.db \
		--queue-workers 2 --queue-lease 0.5 > chaos-run/chaos.out
	cmp chaos-run/baseline.out chaos-run/chaos.out
	$(PY) -m repro.store status --store sqlite:chaos-run/results.db

# Local mirror of the CI tracing job: a fig3 sweep drained by 2 queue
# workers with --trace must print exactly the bytes a sequential
# untraced run prints, leave schema-valid trace artifacts that stitch
# into one complete span tree, project to a canonical form that is
# byte-identical whatever the worker count, and pass the live
# aggregator's alert gate (steals/failures/stragglers all zero).
trace-smoke:
	rm -rf trace-run && mkdir -p trace-run
	$(PY) -m repro.experiments fig3 --scale smoke --jobs 1 \
		--cache-dir trace-run/baseline > trace-run/baseline.out
	$(PY) -m repro.experiments fig3 --scale smoke \
		--store sqlite:trace-run/results.db --queue-workers 2 \
		--trace --telemetry=trace-run/obs > trace-run/fleet.out
	cmp trace-run/baseline.out trace-run/fleet.out
	$(PY) -m repro.obs validate trace-run/obs/fig3
	$(PY) -m repro.obs trace --check trace-run/obs/fig3
	$(PY) -m repro.obs trace trace-run/obs/fig3 > trace-run/tree.txt
	$(PY) -m repro.obs trace --canonical trace-run/obs/fig3 \
		> trace-run/canon-2w.txt
	$(PY) -m repro.experiments fig3 --scale smoke \
		--store sqlite:trace-run/solo.db --queue-workers 1 \
		--trace --telemetry=trace-run/obs-solo > trace-run/solo.out
	cmp trace-run/baseline.out trace-run/solo.out
	$(PY) -m repro.obs trace --canonical trace-run/obs-solo/fig3 \
		> trace-run/canon-1w.txt
	cmp trace-run/canon-2w.txt trace-run/canon-1w.txt
	$(PY) -m repro.obs top trace-run/obs/fig3 \
		--store sqlite:trace-run/results.db --once \
		--rule "steals > 0" --rule "failed > 0" --rule "unfinished > 0"
	$(PY) -m repro.obs report --json trace-run/obs/fig3 \
		> trace-run/report.json
	$(PY) -m repro.store status --store sqlite:trace-run/results.db --json \
		> trace-run/queue.json

figures:
	python -m repro.experiments all

figures-parallel:
	python -m repro.experiments all --scale smoke --jobs 4

report:
	python -m repro.analysis.report benchmarks/results REPORT.md

# Static analysis (hard CI gates; see CONTRIBUTING.md).
# reprolint always runs (in-tree, zero deps).  ruff and mypy run when
# installed (`pip install -e .[dev]`) and are skipped — loudly — when
# not, so offline checkouts aren't blocked; CI always installs both.
lint:
	$(PY) -m repro.devtools.lint --baseline \
		--index-cache .reprolint-cache.json \
		--aux tests --aux benchmarks src
	@if python -c "import ruff" >/dev/null 2>&1; then \
		python -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed (pip install -e .[dev]); skipping"; \
	fi

# Regenerate the committed finding baseline.  The tree is clean today,
# so the baseline is empty; only regenerate it deliberately when
# grandfathering a finding is the explicit decision.
lint-baseline:
	$(PY) -m repro.devtools.lint --write-baseline \
		--aux tests --aux benchmarks src

typecheck:
	@if python -c "import mypy" >/dev/null 2>&1; then \
		PYTHONPATH=src python -m mypy -m repro.api -p repro.runner \
			-m repro.experiments.registry -p repro.devtools.lint; \
	else \
		echo "mypy not installed (pip install -e .[dev]); skipping"; \
	fi

check: test lint typecheck

examples:
	for f in examples/*.py; do echo "== $$f"; \
		PYTHONPATH=src:$$PYTHONPATH python "$$f" || exit 1; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	rm -f .reprolint-cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +

clean-cache:
	rm -rf "$${REPRO_CACHE_DIR:-$$HOME/.cache/repro-experiments}"

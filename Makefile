# Convenience targets for the futility-scaling reproduction.

.PHONY: install test bench bench-smoke bench-paper figures \
	figures-parallel report examples clean clean-cache

install:
	pip install -e . || python setup.py develop

# tests/runner/ exercises the worker pool (a --jobs 2 smoke-scale run
# byte-compared against --jobs 1) on every invocation.
test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SCALE=smoke pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only

figures:
	python -m repro.experiments all

figures-parallel:
	python -m repro.experiments all --scale smoke --jobs 4

report:
	python -m repro.analysis.report benchmarks/results REPORT.md

examples:
	for f in examples/*.py; do echo "== $$f"; python "$$f" || exit 1; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

clean-cache:
	rm -rf "$${REPRO_CACHE_DIR:-$$HOME/.cache/repro-experiments}"

#!/usr/bin/env python3
"""Quickstart: partition a shared cache with feedback-based Futility Scaling.

Builds the paper's practical design — a 16-way set-associative cache with
coarse-grain timestamp LRU futility and the feedback-based FS controller —
partitions it 3:1 between two synthetic threads with *equal* miss pressure,
and shows that the occupancies track the targets while associativity stays
high.

Run:  python examples/quickstart.py
"""

import random

from repro import FeedbackFutilityScalingScheme, build_cache

CACHE_LINES = 4096        # 256KB of 64B lines
WAYS = 16
TARGETS = [3072, 1024]    # a 3:1 split
ACCESSES = 200_000


def main() -> None:
    # The stable facade: every axis accepts a registry name or an
    # instance.  The scheme is passed as an instance here so its scaling
    # factors can be inspected afterwards.
    scheme = FeedbackFutilityScalingScheme()   # l=16, ratio=2, 3-bit shifts
    cache = build_cache(
        array="set-assoc", num_lines=CACHE_LINES, ways=WAYS,
        ranking="coarse-ts-lru",
        scheme=scheme,
        targets=TARGETS,      # num_partitions inferred from targets
    )

    # Two threads with identical behaviour: without scaling they would
    # split the cache 1:1; FS steers them to 3:1 by scaling futility.
    rng = random.Random(42)
    for _ in range(ACCESSES):
        thread = rng.randrange(2)
        addr = thread * 10**9 + rng.randrange(20_000)
        cache.access(addr, thread)

    print("Feedback-based Futility Scaling quickstart")
    print(f"  cache: {CACHE_LINES} lines, {WAYS}-way, "
          f"coarse-timestamp LRU futility")
    for p in range(2):
        print(f"  partition {p}: target {cache.targets[p]:5d}  "
              f"actual {cache.actual_sizes[p]:5d}  "
              f"hit rate {cache.stats.hit_rate(p):6.1%}  "
              f"AEF {cache.stats.aef(p):.3f}  "
              f"scaling factor {scheme.scaling_factors()[p]:g}")
    print(f"  (AEF = average eviction futility; 1.0 is fully associative, "
          f"0.5 is random)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""QoS isolation: protect a latency-sensitive thread from a cache polluter.

The scenario the paper's Fig. 7 evaluates, at example scale: one
associativity-sensitive *subject* (gromacs) with a guaranteed allocation
shares the LLC with memory-intensive *background* polluters (lbm).  We
compare an unpartitioned shared cache against PF and feedback-based FS, and
report the subject's occupancy, miss rate and IPC under each.

Expected outcome: unpartitioned lets lbm squeeze the subject out; PF and FS
both hold the guarantee, and FS does it while keeping eviction quality high.

Run:  python examples/qos_isolation.py   (takes ~1 minute)
"""

from repro import (
    CoarseTimestampLRURanking,
    FeedbackFutilityScalingScheme,
    MultiprogramSimulator,
    PartitionedCache,
    PartitioningFirstScheme,
    QoSPolicy,
    SetAssociativeArray,
    UnpartitionedScheme,
)
from repro.experiments.common import mixed_traces, prefill_to_targets

CACHE_LINES = 8192          # 512KB
SUBJECT_LINES = 1024        # the subject's guarantee
NUM_BACKGROUND = 7
TRACE_LENGTH = 40_000
INSTRUCTION_LIMIT = 250_000
WORKLOAD_SCALE = 0.25


def run_scheme(name, scheme):
    threads = 1 + NUM_BACKGROUND
    targets = QoSPolicy(1, NUM_BACKGROUND, SUBJECT_LINES).allocate(CACHE_LINES)
    traces = mixed_traces(["gromacs"] + ["lbm"] * NUM_BACKGROUND,
                          TRACE_LENGTH, scale=WORKLOAD_SCALE, seed=1)
    cache = PartitionedCache(SetAssociativeArray(CACHE_LINES, 16),
                             CoarseTimestampLRURanking(), scheme, threads,
                             targets=targets)
    prefill_to_targets(cache, traces)
    result = MultiprogramSimulator(
        cache, traces, instruction_limit=INSTRUCTION_LIMIT).run()
    subject = result.threads[0]
    print(f"  {name:14s} occupancy {cache.stats.mean_occupancy(0):7.0f} "
          f"/ {SUBJECT_LINES}   miss rate {subject.miss_rate:6.1%}   "
          f"IPC {subject.ipc:.3f}   AEF {cache.stats.aef(0):.3f}")


def main() -> None:
    print(f"QoS isolation: 1 gromacs subject ({SUBJECT_LINES} lines "
          f"guaranteed) vs {NUM_BACKGROUND} lbm polluters")
    run_scheme("unpartitioned", UnpartitionedScheme())
    run_scheme("pf", PartitioningFirstScheme())
    run_scheme("fs-feedback", FeedbackFutilityScalingScheme())


if __name__ == "__main__":
    main()

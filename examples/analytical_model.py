#!/usr/bin/env python3
"""Explore the Futility Scaling analytical framework (Section IV).

No simulation at all: this example drives the closed-form machinery in
``repro.core.scaling`` — Equation (1), the N-partition solver, eviction
rates, the feasibility bound and analytic associativity — and renders the
trade-offs as terminal charts.

Run:  python examples/analytical_model.py
"""

from repro.analysis.text_plots import ascii_chart, sparkline
from repro.core import scaling

R = 16  # replacement candidates, as in the paper's L2


def equation_one_fan() -> None:
    print("Equation (1): alpha_2 vs S_2 for several insertion rates "
          f"(R={R})")
    # Start at S_2 = 0.14: below that, I_1 = 0.1 violates the
    # feasibility bound S_1**R (the Fig. 3 axes start at 0.2 for the
    # same reason).
    s2_grid = [s / 100 for s in range(14, 45, 2)]
    curves = {}
    for i2 in (0.6, 0.7, 0.8, 0.9):
        curves[f"I2={i2}"] = [
            scaling.alpha_for_two_partitions(s2, i2, R) for s2 in s2_grid]
    print(ascii_chart(curves, x_label="S_2 (0.14 .. 0.44)", height=10))
    print()


def associativity_vs_alpha() -> None:
    print("Analytic AEF of a partition vs its scaling factor "
          "(S = 0.2, the rest unscaled):")
    alphas = [1.0 + 0.5 * k for k in range(15)]
    aefs = [scaling.analytic_aef([1.0, a], [0.8, 0.2], R, 1) for a in alphas]
    print("  alpha 1.0 -> 8.0:", sparkline(aefs))
    print(f"  AEF {aefs[0]:.3f} at alpha=1 (the R/(R+1) ceiling) down to "
          f"{aefs[-1]:.3f} at alpha={alphas[-1]:g}")
    print()


def feasibility_frontier() -> None:
    print("Feasibility bound: the largest holdable size fraction vs "
          "insertion share (S_max = I^(1/R)):")
    shares = [0.001, 0.01, 0.05, 0.1, 0.25, 0.5]
    for i in shares:
        bound = scaling.max_holdable_size_fraction(i, R)
        bar = "#" * int(bound * 40)
        print(f"  I = {i:5.3f}  ->  S_max = {bound:5.1%}  {bar}")
    print("  (even a 0.1% inserter can hold "
          f"{scaling.max_holdable_size_fraction(0.001, R):.0%} of the "
          "cache at R=16)")
    print()


def four_partition_solution() -> None:
    sizes = [0.4, 0.3, 0.2, 0.1]
    insertions = [0.1, 0.2, 0.3, 0.4]
    alphas = scaling.solve_scaling_factors(sizes, insertions, R)
    rates = scaling.eviction_rates(alphas, sizes, R)
    print("N-partition solver: hold sizes [0.4 0.3 0.2 0.1] under "
          "insertions [0.1 0.2 0.3 0.4]:")
    for p, (s, i, a, e) in enumerate(zip(sizes, insertions, alphas, rates)):
        aef = scaling.analytic_aef(alphas, sizes, R, p)
        print(f"  partition {p}: S={s:.2f} I={i:.2f} -> alpha={a:7.3f}  "
              f"(E={e:.3f} = I, AEF={aef:.3f})")
    print()


def main() -> None:
    equation_one_fan()
    associativity_vs_alpha()
    feasibility_frontier()
    four_partition_solution()


if __name__ == "__main__":
    main()

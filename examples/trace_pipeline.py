#!/usr/bin/env python3
"""Trace pipeline: generate, L1-filter, and SimPoint-reduce a workload.

Shows the methodology substrate the paper's experiments sit on: a raw
address stream from a stack-distance workload model is filtered through a
private L1 (the paper's traces are L2 accesses collected below per-core
L1s), profiled for its miss-rate curve, and reduced to representative
regions SimPoint-style.

Run:  python examples/trace_pipeline.py
"""

from repro import UtilityMonitor, benchmark_trace
from repro.sim.l1 import filter_through_l1
from repro.trace.simpoint import representative_trace, select_regions

LENGTH = 30_000


def main() -> None:
    # 1. Generate a raw access stream for a calibrated benchmark model.
    raw = benchmark_trace("omnetpp", LENGTH, seed=3)
    print(f"raw {raw.name}: {len(raw)} accesses, "
          f"footprint {raw.footprint()} lines, "
          f"{raw.instructions} instructions")

    # 2. Filter through a 32KB 4-way private L1 (Table II) to get the
    #    L2-level stream; instruction counts are preserved in the gaps.
    l2_stream = filter_through_l1(raw, num_lines=512, ways=4)
    print(f"after L1: {len(l2_stream)} L2 accesses "
          f"({len(l2_stream) / len(raw):.1%} of raw), "
          f"{l2_stream.instructions} instructions (preserved)")

    # 3. Profile the L2 stream's miss-rate curve.
    curve = UtilityMonitor().consume(l2_stream).miss_curve(4096, granule=512)
    points = ", ".join(f"{g * 512}l:{m:.0f}" for g, m in enumerate(curve))
    print(f"miss curve (capacity:misses): {points}")

    # 4. SimPoint-style reduction: cluster fixed intervals, keep one
    #    representative per phase.
    regions = select_regions(l2_stream, interval=len(l2_stream) // 10, k=3)
    reduced = representative_trace(l2_stream, regions)
    print("representative regions (start, weight): "
          + ", ".join(f"({r.start}, {r.weight:.2f})" for r in regions))
    print(f"reduced trace: {len(reduced)} accesses "
          f"({len(reduced) / len(l2_stream):.1%} of the L2 stream)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Associativity under partitioning: why Futility Scaling exists.

Reproduces the paper's motivating observation (Section III) at example
scale: as a Partitioning-First cache is split into more partitions, the
victim-identification step sees ever fewer candidates and the evicted
lines' futility collapses toward the random-eviction diagonal — while FS
keeps evicting from the full candidate list and preserves associativity at
any partition count.

Also prints the analytical predictions from the Section IV framework next
to the measurements (they should agree on the random-candidates array).

Run:  python examples/associativity_study.py
"""

import random

from repro import (
    FutilityScalingScheme,
    LRURanking,
    PartitionedCache,
    PartitioningFirstScheme,
    RandomCandidatesArray,
    scaling,
)

PARTITION_LINES = 256
CANDIDATES = 16
ACCESSES_PER_PARTITION = 25_000


def run(scheme_factory, num_partitions, seed=0):
    lines = PARTITION_LINES * num_partitions
    cache = PartitionedCache(
        RandomCandidatesArray(lines, CANDIDATES, seed=seed), LRURanking(),
        scheme_factory(num_partitions), num_partitions)
    rng = random.Random(seed)
    for _ in range(ACCESSES_PER_PARTITION * num_partitions):
        part = rng.randrange(num_partitions)
        cache.access(part * 10**9 + rng.randrange(4 * PARTITION_LINES), part)
    return cache.stats.aef(0)


def main() -> None:
    analytic = scaling.analytic_aef([1.0], [1.0], CANDIDATES)
    print(f"Associativity (AEF of partition 1) vs number of partitions")
    print(f"  analytic ceiling R/(R+1) = {analytic:.3f}; "
          f"random-eviction floor = 0.500\n")
    print(f"  {'N':>3}  {'PF':>6}  {'FS':>6}")
    for n in (1, 2, 4, 8, 16):
        aef_pf = run(lambda k: PartitioningFirstScheme(), n)
        aef_fs = run(lambda k: FutilityScalingScheme(alphas=[1.0] * k), n)
        print(f"  {n:>3}  {aef_pf:6.3f}  {aef_fs:6.3f}")
    print("\nPF degrades toward 0.5 with N; FS stays at the analytic "
          "ceiling regardless of N (equal I/S ratios mean alpha = 1 for "
          "every partition).")


if __name__ == "__main__":
    main()

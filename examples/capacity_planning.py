#!/usr/bin/env python3
"""Capacity planning: the full allocation + enforcement stack.

Demonstrates the two-layer structure from Section II-A: a software
*allocation policy* decides partition sizes from profiled miss-rate curves
(UCP-style lookahead over stack-distance monitors), and the *enforcement
scheme* (feedback-based FS) realizes them in hardware.  Compares the
utility-optimized allocation against a naive equal split.

Run:  python examples/capacity_planning.py
"""

from repro import (
    CoarseTimestampLRURanking,
    EqualSharePolicy,
    FeedbackFutilityScalingScheme,
    PartitionedCache,
    SetAssociativeArray,
    UtilityBasedPolicy,
    UtilityMonitor,
    benchmark_trace,
)
from repro.trace.mixing import run_round_robin

CACHE_LINES = 4096
GRANULE = 256
BENCHMARKS = ("gromacs", "mcf", "lbm")
TRACE_LENGTH = 40_000
SCALE = 0.25


def make_traces(seed=0):
    return [benchmark_trace(name, TRACE_LENGTH, seed=seed + i,
                            addr_base=(i + 1) << 40, scale=SCALE)
            for i, name in enumerate(BENCHMARKS)]


def enforce(targets, label):
    cache = PartitionedCache(SetAssociativeArray(CACHE_LINES, 16),
                             CoarseTimestampLRURanking(),
                             FeedbackFutilityScalingScheme(),
                             len(BENCHMARKS), targets=targets)
    run_round_robin(cache, make_traces(seed=7), 3 * TRACE_LENGTH,
                    warmup=30_000)
    total_misses = cache.stats.total_misses()
    print(f"  {label:18s} targets {targets}  "
          f"misses {total_misses:6d}  "
          f"hit rates "
          + " ".join(f"{name}={cache.stats.hit_rate(p):.1%}"
                     for p, name in enumerate(BENCHMARKS)))
    return total_misses


def main() -> None:
    # 1. Profile each thread's miss-rate curve with a stack-distance
    #    utility monitor (UMON-style).
    curves = []
    for i, name in enumerate(BENCHMARKS):
        monitor = UtilityMonitor()
        monitor.consume(make_traces()[i])
        curves.append(monitor.miss_curve(CACHE_LINES, GRANULE))
    print("Profiled miss curves (misses at 0 / half / full capacity):")
    for name, curve in zip(BENCHMARKS, curves):
        print(f"  {name:10s} {curve[0]:7.0f} / {curve[len(curve) // 2]:7.0f}"
              f" / {curve[-1]:7.0f}")

    # 2. Allocate capacity: utility-based lookahead vs equal share.
    utility_targets = UtilityBasedPolicy(curves, granule=GRANULE).allocate(
        CACHE_LINES)
    equal_targets = EqualSharePolicy(len(BENCHMARKS)).allocate(CACHE_LINES)

    # 3. Enforce both allocations with feedback FS and compare.
    print("\nEnforcing with feedback-based Futility Scaling:")
    misses_equal = enforce(equal_targets, "equal split")
    misses_utility = enforce(utility_targets, "utility lookahead")
    saved = (misses_equal - misses_utility) / misses_equal
    print(f"\n  utility-based allocation saves {saved:.1%} of misses "
          f"(streaming lbm gets the minimum; the reuse-heavy threads "
          f"get the capacity).")


if __name__ == "__main__":
    main()

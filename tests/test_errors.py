"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    ConfigurationError,
    InfeasiblePartitioningError,
    ReproError,
    SimulationError,
    TraceError,
)


@pytest.mark.parametrize("exc", [
    ConfigurationError, InfeasiblePartitioningError, TraceError,
    SimulationError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_value_error_compatibility():
    # Configuration-style errors should also be catchable as ValueError.
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(InfeasiblePartitioningError, ValueError)
    assert issubclass(TraceError, ValueError)


def test_simulation_error_is_runtime_error():
    assert issubclass(SimulationError, RuntimeError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise InfeasiblePartitioningError("bound violated")

"""Tests for the order-statistic containers in repro._util."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    FenwickRankTracker,
    SortedKeyList,
    check_fraction,
    check_positive,
    check_probabilities,
)
from repro.errors import ConfigurationError


class TestSortedKeyList:
    def test_empty(self):
        s = SortedKeyList()
        assert len(s) == 0
        assert list(s) == []
        with pytest.raises(IndexError):
            s.min()
        with pytest.raises(IndexError):
            s.max()

    def test_add_and_order(self):
        s = SortedKeyList()
        for v in [5, 1, 3, 2, 4]:
            s.add(v)
        assert list(s) == [1, 2, 3, 4, 5]
        assert s.min() == 1
        assert s.max() == 5

    def test_init_from_iterable(self):
        s = SortedKeyList([3, 1, 2])
        assert list(s) == [1, 2, 3]

    def test_duplicates_allowed(self):
        s = SortedKeyList()
        s.add(1)
        s.add(1)
        assert len(s) == 2
        s.remove(1)
        assert len(s) == 1
        assert 1 in s

    def test_remove_missing_raises(self):
        s = SortedKeyList([1, 2])
        with pytest.raises(KeyError):
            s.remove(3)

    def test_rank(self):
        s = SortedKeyList([10, 20, 30])
        assert s.rank(10) == 0
        assert s.rank(20) == 1
        assert s.rank(35) == 3
        assert s.rank_right(20) == 2

    def test_contains(self):
        s = SortedKeyList([1, 3])
        assert 1 in s
        assert 2 not in s

    def test_kth(self):
        s = SortedKeyList([5, 1, 3])
        assert s.kth(0) == 1
        assert s.kth(-1) == 5

    def test_tuple_keys(self):
        s = SortedKeyList()
        s.add((2, 1))
        s.add((1, 9))
        assert s.min() == (1, 9)
        assert s.rank((2, 0)) == 1

    @given(st.lists(st.integers(-1000, 1000)))
    @settings(max_examples=50)
    def test_matches_sorted_reference(self, values):
        s = SortedKeyList()
        for v in values:
            s.add(v)
        reference = sorted(values)
        assert list(s) == reference
        for v in values:
            assert s.rank(v) == reference.index(v)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=200))
    @settings(max_examples=50)
    def test_interleaved_add_remove(self, ops):
        s = SortedKeyList()
        reference = []
        for is_add, v in ops:
            if is_add or v not in reference:
                s.add(v)
                reference.append(v)
            else:
                s.remove(v)
                reference.remove(v)
            assert list(s) == sorted(reference)


class TestFenwickRankTracker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FenwickRankTracker(0)

    def test_add_remove_rank(self):
        f = FenwickRankTracker(16)
        for k in [3, 5, 5, 10]:
            f.add(k)
        assert len(f) == 4
        assert f.rank(5) == 1
        assert f.rank_right(5) == 3
        assert f.count_at(5) == 2
        f.remove(5)
        assert f.count_at(5) == 1
        assert len(f) == 3

    def test_out_of_range(self):
        f = FenwickRankTracker(4)
        with pytest.raises(KeyError):
            f.add(4)
        with pytest.raises(KeyError):
            f.add(-1)

    def test_remove_absent(self):
        f = FenwickRankTracker(4)
        with pytest.raises(KeyError):
            f.remove(2)

    @given(st.lists(st.integers(0, 63), max_size=300))
    @settings(max_examples=50)
    def test_against_list_reference(self, keys):
        f = FenwickRankTracker(64)
        for k in keys:
            f.add(k)
        reference = sorted(keys)
        for probe in range(64):
            expected_rank = sum(1 for k in reference if k < probe)
            assert f.rank(probe) == expected_rank
            assert f.count_at(probe) == reference.count(probe)


class TestValidationHelpers:
    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive(-3, "x")

    def test_check_fraction(self):
        check_fraction(0.0, "x")
        check_fraction(1.0, "x")
        with pytest.raises(ConfigurationError):
            check_fraction(-0.1, "x")
        with pytest.raises(ConfigurationError):
            check_fraction(1.1, "x")
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "x", inclusive_low=False)
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "x", inclusive_high=False)

    def test_check_probabilities(self):
        check_probabilities([0.5, 0.5], "p")
        with pytest.raises(ConfigurationError):
            check_probabilities([0.5, 0.6], "p")
        with pytest.raises(ConfigurationError):
            check_probabilities([-0.1, 1.1], "p")

"""The stable build_cache/build_array facade and its validation."""

import pytest

import repro
from repro import build_array, build_cache
from repro.cache.arrays import SetAssociativeArray, SkewAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import make_ranking
from repro.core.schemes.base import make_scheme
from repro.errors import ConfigurationError


class TestBuildArray:
    def test_by_name(self):
        array = build_array("set-assoc", 256, ways=8)
        assert isinstance(array, SetAssociativeArray)
        assert array.num_lines == 256

    def test_instance_passthrough(self):
        array = SkewAssociativeArray(128, 4)
        assert build_array(array) is array

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="zcache"):
            build_array("z-cache", 128)

    def test_name_requires_num_lines(self):
        with pytest.raises(ConfigurationError, match="num_lines"):
            build_array("set-assoc")

    def test_rejects_non_array_object(self):
        with pytest.raises(ConfigurationError, match="CacheArray"):
            build_array(42)


class TestBuildCache:
    def test_all_names(self):
        cache = build_cache(array="set-assoc", num_lines=256, ways=8,
                            ranking="lru", scheme="fs-feedback",
                            targets=[64, 64])
        assert isinstance(cache, PartitionedCache)
        assert cache.num_partitions == 2

    def test_all_instances(self):
        cache = build_cache(array=SetAssociativeArray(256, 8),
                            ranking=make_ranking("lfu"),
                            scheme=make_scheme("fs"),
                            num_partitions=4)
        assert cache.num_partitions == 4

    def test_partitions_inferred_from_targets(self):
        cache = build_cache(array="set-assoc", num_lines=512,
                            targets=[100, 100, 100])
        assert cache.num_partitions == 3

    def test_requires_partitions_or_targets(self):
        with pytest.raises(ConfigurationError, match="num_partitions"):
            build_cache(array="set-assoc", num_lines=256)

    def test_rejects_target_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="2 entries"):
            build_cache(array="set-assoc", num_lines=256,
                        num_partitions=3, targets=[64, 64])

    def test_rejects_negative_targets(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            build_cache(array="set-assoc", num_lines=256, targets=[-1, 64])

    def test_rejects_oversubscribed_targets(self):
        with pytest.raises(ConfigurationError, match="only 256"):
            build_cache(array="set-assoc", num_lines=256, targets=[200, 200])

    def test_rejects_wrong_ranking_type(self):
        with pytest.raises(ConfigurationError, match="FutilityRanking"):
            build_cache(array="set-assoc", num_lines=256,
                        ranking=object(), num_partitions=2)

    def test_rejects_wrong_scheme_type(self):
        with pytest.raises(ConfigurationError, match="PartitioningScheme"):
            build_cache(array="set-assoc", num_lines=256,
                        scheme=3.14, num_partitions=2)

    def test_unknown_ranking_name(self):
        with pytest.raises(ConfigurationError):
            build_cache(array="set-assoc", num_lines=256,
                        ranking="mru", num_partitions=2)


def test_facade_exported_at_top_level():
    assert repro.build_cache is build_cache
    assert repro.build_array is build_array
    assert "build_cache" in repro.__all__

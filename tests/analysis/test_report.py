"""Tests for the reproduction report builder."""

import pytest

from repro.analysis.report import build_report, main
from repro.errors import ConfigurationError


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig3.txt").write_text("Figure 3 table\n")
    (d / "tableII.txt").write_text("Table II rows\n")
    (d / "custom_extra.txt").write_text("extra content\n")
    return d


def test_build_report_orders_sections(results_dir):
    report = build_report(results_dir)
    assert report.index("Table II") < report.index("Figure 3")
    assert "custom_extra" in report          # unknown names still included
    assert "Figure 3 table" in report
    assert report.startswith("# Futility Scaling reproduction")


def test_build_report_missing_dir(tmp_path):
    with pytest.raises(ConfigurationError):
        build_report(tmp_path / "nope")


def test_build_report_empty_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ConfigurationError):
        build_report(empty)


def test_main_writes_file(results_dir, tmp_path, capsys):
    out = tmp_path / "REPORT.md"
    assert main([str(results_dir), str(out)]) == 0
    assert "Figure 3 table" in out.read_text()


def test_main_prints_to_stdout(results_dir, capsys):
    assert main([str(results_dir)]) == 0
    assert "Figure 3 table" in capsys.readouterr().out


def test_main_usage_error(capsys):
    assert main([]) == 2


# Regression tests for the DET002 fix: build_report is a pure function
# of the tables on disk, and only the CLI (optionally) stamps a date.

def test_build_report_is_byte_stable(results_dir):
    assert build_report(results_dir) == build_report(results_dir)
    assert "Generated from" in build_report(results_dir)


def test_build_report_stamps_injected_date_only(results_dir):
    report = build_report(results_dir, generated="2026-08-06")
    assert "Generated 2026-08-06 from" in report
    assert "Generated 2026-08-06" not in build_report(results_dir)


def test_main_default_stamps_a_date(results_dir, capsys):
    assert main([str(results_dir)]) == 0
    assert "Generated 2" in capsys.readouterr().out  # ISO year prefix


def test_main_no_date_is_byte_stable(results_dir, capsys):
    assert main(["--no-date", str(results_dir)]) == 0
    first = capsys.readouterr().out
    assert main(["--no-date", str(results_dir)]) == 0
    assert capsys.readouterr().out == first
    assert "Generated from" in first

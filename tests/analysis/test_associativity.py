"""Tests for associativity analysis."""

import math

import numpy as np
import pytest

from repro.analysis.associativity import (
    aef,
    associativity_cdf,
    cdf_at,
    full_assoc_aef,
    worst_case_cdf,
)
from repro.errors import ConfigurationError


def test_aef_mean():
    assert aef([0.2, 0.4, 0.6]) == pytest.approx(0.4)


def test_aef_empty_is_nan():
    assert math.isnan(aef([]))


def test_cdf_shape_and_endpoints():
    x, cdf = associativity_cdf([0.5] * 10, grid=11)
    assert len(x) == 11
    assert cdf[0] == 0.0
    assert cdf[-1] == 1.0
    assert np.all(np.diff(cdf) >= 0)


def test_cdf_of_uniform_samples_near_diagonal():
    rng = np.random.default_rng(0)
    samples = rng.random(20_000)
    x, cdf = associativity_cdf(samples)
    assert np.max(np.abs(cdf - worst_case_cdf(x))) < 0.02


def test_cdf_validation():
    with pytest.raises(ConfigurationError):
        associativity_cdf([])
    with pytest.raises(ConfigurationError):
        associativity_cdf([0.5], grid=1)


def test_cdf_at():
    samples = [0.1, 0.5, 0.9]
    assert cdf_at(samples, 0.5) == pytest.approx(2 / 3)
    assert cdf_at(samples, 0.0) == 0.0
    assert cdf_at(samples, 1.0) == 1.0
    with pytest.raises(ConfigurationError):
        cdf_at([], 0.5)


def test_worst_case_is_diagonal():
    x = np.linspace(0, 1, 5)
    assert np.allclose(worst_case_cdf(x), x)


def test_full_assoc_reference():
    assert full_assoc_aef() == 1.0

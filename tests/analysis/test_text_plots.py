"""Tests for the plain-text plotting helpers."""

import pytest

from repro.analysis.text_plots import ascii_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_pinned_scale(self):
        s = sparkline([0.5], low=0.0, high=1.0)
        assert s in "▁▂▃▄▅▆▇█"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestAsciiChart:
    def test_basic_shape(self):
        chart = ascii_chart({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
                            width=20, height=5)
        lines = chart.splitlines()
        assert len(lines) == 7  # 5 rows + axis + legend
        assert "* up" in lines[-1]
        assert "o down" in lines[-1]
        # The rising series occupies the top-right, the falling bottom-right.
        assert "*" in lines[0]
        assert "o" in lines[0]

    def test_axis_labels(self):
        chart = ascii_chart({"a": [0, 1]}, x_label="futility")
        assert "> futility" in chart

    def test_scale_annotations(self):
        chart = ascii_chart({"a": [2.0, 8.0]}, width=10, height=4)
        assert "8.000" in chart
        assert "2.000" in chart

    def test_flat_series_handled(self):
        chart = ascii_chart({"a": [1.0, 1.0, 1.0]}, width=10, height=4)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1]}, width=4)
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": []})

"""Tests for sizing analysis and performance metrics."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    fairness,
    geometric_mean,
    harmonic_mean_speedup,
    mpki,
    normalized,
    speedups,
    throughput,
    weighted_speedup,
)
from repro.analysis.sizing import (
    absolute_deviation_quantile,
    deviation_cdf,
    mean_absolute_deviation,
    mean_deviation,
    theoretical_step_probability,
)
from repro.errors import ConfigurationError


class TestSizing:
    def test_mad(self):
        assert mean_absolute_deviation([-2, 2, -2, 2]) == pytest.approx(2.0)
        assert math.isnan(mean_absolute_deviation([]))

    def test_mean(self):
        assert mean_deviation([-2, 2]) == pytest.approx(0.0)
        assert math.isnan(mean_deviation([]))

    def test_deviation_cdf_absolute(self):
        x, cdf = deviation_cdf([-5, 0, 5], absolute=True, grid=6)
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) >= 0)

    def test_deviation_cdf_constant_samples(self):
        x, cdf = deviation_cdf([3, 3, 3])
        assert cdf[-1] == 1.0

    def test_deviation_cdf_validation(self):
        with pytest.raises(ConfigurationError):
            deviation_cdf([])
        with pytest.raises(ConfigurationError):
            deviation_cdf([1], grid=1)

    def test_quantile(self):
        assert absolute_deviation_quantile([-10, 1, 1, 1], 1.0) == 10
        assert math.isnan(absolute_deviation_quantile([], 0.5))
        with pytest.raises(ConfigurationError):
            absolute_deviation_quantile([1], 1.5)

    def test_step_probability(self):
        """I(1-I): zero at the extremes, maximal 0.25 at I=0.5
        (Section IV-D)."""
        assert theoretical_step_probability(0.0) == 0.0
        assert theoretical_step_probability(1.0) == 0.0
        assert theoretical_step_probability(0.5) == 0.25
        assert theoretical_step_probability(0.9) == pytest.approx(0.09)
        with pytest.raises(ConfigurationError):
            theoretical_step_probability(1.5)


class TestMetrics:
    def test_speedups(self):
        assert speedups([1.0, 2.0], [0.5, 1.0]) == [2.0, 2.0]
        with pytest.raises(ConfigurationError):
            speedups([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            speedups([1.0], [0.0])

    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 1.0], [0.5, 0.5]) == pytest.approx(4.0)

    def test_throughput(self):
        assert throughput([0.5, 0.7]) == pytest.approx(1.2)
        with pytest.raises(ConfigurationError):
            throughput([])

    def test_harmonic_mean(self):
        assert harmonic_mean_speedup([1.0, 1.0], [1.0, 1.0]) == \
            pytest.approx(1.0)
        # Harmonic mean penalizes imbalance vs the arithmetic mean.
        hm = harmonic_mean_speedup([2.0, 0.5], [1.0, 1.0])
        assert hm < (2.0 + 0.5) / 2

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_fairness(self):
        assert fairness([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert fairness([2.0, 1.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_mpki(self):
        assert mpki(50, 1_000_000) == pytest.approx(0.05)
        with pytest.raises(ConfigurationError):
            mpki(1, 0)

    def test_normalized(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ConfigurationError):
            normalized([1.0], 0.0)

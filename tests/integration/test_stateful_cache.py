"""Stateful property testing of the partitioned-cache engine.

A hypothesis rule-based state machine drives a cache through arbitrary
interleavings of accesses, target changes, stat resets and invalidations,
for every scheme family, and continuously checks the engine's global
invariants (occupancy conservation, ranking-size agreement, lookup
consistency, flow conservation).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.base import make_scheme

LINES = 64
PARTITIONS = 3

SCHEME_BUILDS = {
    "pf": ("lru", "set-assoc"),
    "fs": ("lru", "random"),
    "fs-feedback": ("coarse", "set-assoc"),
    "vantage": ("lru", "set-assoc"),
    "prism": ("lru", "set-assoc"),
    "unpartitioned": ("lru", "set-assoc"),
}


def build_cache(scheme_name: str) -> PartitionedCache:
    ranking_kind, array_kind = SCHEME_BUILDS[scheme_name]
    ranking = (CoarseTimestampLRURanking() if ranking_kind == "coarse"
               else LRURanking())
    array = (RandomCandidatesArray(LINES, 8, seed=1)
             if array_kind == "random" else SetAssociativeArray(LINES, 8))
    return PartitionedCache(array, ranking, make_scheme(scheme_name),
                            PARTITIONS)


class CacheMachine(RuleBasedStateMachine):
    scheme_name = "pf"

    @initialize()
    def setup(self):
        self.cache = build_cache(self.scheme_name)

    @rule(part=st.integers(0, PARTITIONS - 1), addr=st.integers(0, 200))
    def access(self, part, addr):
        self.cache.access(part * 1000 + addr, part)

    @rule(data=st.data())
    def retarget(self, data):
        shares = data.draw(st.lists(st.integers(0, 10), min_size=PARTITIONS,
                                    max_size=PARTITIONS))
        total = sum(shares)
        if total == 0:
            return
        targets = [s * LINES // total for s in shares]
        self.cache.set_targets(targets)

    @rule()
    def reset_stats(self):
        self.cache.reset_stats()

    @rule(idx=st.integers(0, LINES - 1))
    def invalidate(self, idx):
        self.cache.invalidate_index(idx)

    @invariant()
    def engine_invariants(self):
        if not hasattr(self, "cache"):
            return
        self.cache.check_invariants()

    @invariant()
    def flow_conservation(self):
        if not hasattr(self, "cache"):
            return
        stats = self.cache.stats
        resident = sum(self.cache.actual_sizes)
        # insertions - evictions - flushes == resident lines created since
        # the last stats reset; resident can only exceed that by lines
        # surviving from before the reset.
        created = sum(stats.insertions) - sum(stats.evictions) - stats.flushes
        assert resident >= created


def _machine_for(scheme: str):
    machine = type(f"CacheMachine_{scheme}", (CacheMachine,),
                   {"scheme_name": scheme})
    machine.TestCase.settings = settings(
        max_examples=15, stateful_step_count=60, deadline=None)
    return machine.TestCase


TestPFMachine = _machine_for("pf")
TestFSMachine = _machine_for("fs")
TestFeedbackFSMachine = _machine_for("fs-feedback")
TestVantageMachine = _machine_for("vantage")
TestPriSMMachine = _machine_for("prism")
TestUnpartitionedMachine = _machine_for("unpartitioned")

"""Integration: simulation results flowing into the metrics toolkit."""

import pytest

from repro.analysis.metrics import (
    fairness,
    harmonic_mean_speedup,
    speedups,
    throughput,
    weighted_speedup,
)
from repro.cache.arrays import SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.core.schemes.unpartitioned import UnpartitionedScheme
from repro.sim.engine import MultiprogramSimulator, simulate_single_thread
from repro.trace.access import Trace


def loop_trace(base, period, n=600, gap=20):
    return Trace([base + (i % period) for i in range(n)], gaps=[gap] * n)


def baseline_ipcs(traces, lines=128):
    """Each thread alone on the full cache (the standard speedup baseline)."""
    out = []
    for t in traces:
        cache = PartitionedCache(SetAssociativeArray(lines, 8), LRURanking(),
                                 UnpartitionedScheme(), 1)
        out.append(simulate_single_thread(cache, t).ipc)
    return out


def test_weighted_speedup_pipeline():
    traces = [loop_trace(0, 40), loop_trace(10**6, 200)]
    base = baseline_ipcs(traces)
    shared = PartitionedCache(SetAssociativeArray(128, 8), LRURanking(),
                              PartitioningFirstScheme(), 2)
    result = MultiprogramSimulator(shared, traces,
                                   instruction_limit=8000).run()
    ws = weighted_speedup(result.ipcs, base)
    # Sharing a same-size cache cannot beat each thread owning it alone.
    assert 0.5 < ws <= 2.0 + 1e-6
    assert throughput(result.ipcs) > 0
    assert 0 < harmonic_mean_speedup(result.ipcs, base) <= 1.0 + 1e-6
    assert 0 < fairness(result.ipcs, base) <= 1.0


def test_simulation_result_accessors():
    traces = [loop_trace(0, 16, n=100)]
    cache = PartitionedCache(SetAssociativeArray(64, 8), LRURanking(),
                             PartitioningFirstScheme(), 1)
    result = MultiprogramSimulator(cache, traces,
                                   instruction_limit=1000).run()
    assert result.thread(0) is result.threads[0]
    assert result.ipcs == [result.threads[0].ipc]
    assert result.total_cycles >= result.threads[0].cycles


def test_partition_protects_small_thread_speedup():
    """The end-to-end QoS story in miniature: PF partitioning keeps the
    small thread's speedup near 1.0 where the shared cache degrades it."""
    victim = loop_trace(0, 30, n=800)
    polluter = Trace(range(10**6, 10**6 + 800), gaps=[5] * 800)
    traces = [victim, polluter]
    base = baseline_ipcs(traces)

    def run(scheme, targets=None):
        cache = PartitionedCache(SetAssociativeArray(64, 8), LRURanking(),
                                 scheme, 2, targets=targets)
        result = MultiprogramSimulator(cache, traces,
                                       instruction_limit=12_000).run()
        return speedups(result.ipcs, base)[0]

    shared = run(UnpartitionedScheme())
    partitioned = run(PartitioningFirstScheme(), targets=[40, 24])
    assert partitioned > shared
    assert partitioned > 0.9

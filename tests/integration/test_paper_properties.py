"""Integration tests of the paper's analytical claims against simulation.

These close the loop between the analytical framework (Section IV) and the
trace-driven substrate: the model's predictions must hold empirically on a
random-candidates cache (the array that satisfies the Uniformity
Assumption).
"""

import random

import pytest

from repro.analysis.associativity import cdf_at
from repro.cache.arrays import RandomCandidatesArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking, RandomRanking
from repro.core.scaling import (
    alpha_for_two_partitions,
    analytic_aef,
    eviction_futility_cdf,
    eviction_rates,
    max_holdable_size_fraction,
)
from repro.core.schemes.futility_scaling import FutilityScalingScheme
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.trace.access import Trace
from repro.trace.mixing import run_insertion_rate_controlled

R = 16


def stream(base, n=200_000):
    return Trace(range(base, base + n))


def run_controlled(cache, rates, insertions, seed=0):
    traces = [stream(0), stream(10**9)]
    run_insertion_rate_controlled(cache, traces, rates, insertions,
                                  prefill=True, seed=seed)
    return cache


class TestEvictionRateModel:
    def test_fixed_alphas_drive_sizes_to_model_equilibrium(self):
        """With fixed scaling factors [1, 2] and symmetric insertions,
        sizes must drift to the unique split where the model's eviction
        rates equal the insertion rates (invert Eq. (1) for alpha = 2)."""
        alphas = [1.0, 2.0]
        lo, hi = 0.01, 0.49
        for _ in range(60):  # bisect alpha(S2, I2=0.5) = 2
            mid = (lo + hi) / 2
            if alpha_for_two_partitions(mid, 0.5, R) > 2.0:
                lo = mid
            else:
                hi = mid
        predicted_s2 = (lo + hi) / 2
        cache = PartitionedCache(
            RandomCandidatesArray(2048, R, seed=1), LRURanking(),
            FutilityScalingScheme(alphas=alphas), 2)
        run_controlled(cache, [0.5, 0.5], 60_000, seed=2)
        measured_s2 = cache.actual_sizes[1] / cache.num_lines
        assert measured_s2 == pytest.approx(predicted_s2, abs=0.02)
        # And in steady state each partition's eviction share equals its
        # insertion share (conservation).
        assert cache.stats.eviction_fractions()[1] == pytest.approx(
            cache.stats.insertion_fractions()[1], abs=0.03)

    def test_equation_one_sizes_are_stationary(self):
        """Starting *at* the Eq. (1) steady state, sizes stay there."""
        split = (0.75, 0.25)
        alpha = alpha_for_two_partitions(split[1], 0.5, R)
        cache = PartitionedCache(
            RandomCandidatesArray(2048, R, seed=3), LRURanking(),
            FutilityScalingScheme(alphas=[1.0, alpha]), 2,
            targets=[1536, 512])
        run_controlled(cache, [0.5, 0.5], 60_000, seed=4)
        assert cache.actual_sizes[1] == pytest.approx(512, abs=80)


class TestAssociativityModel:
    def test_unscaled_partition_aef_matches_r_over_r_plus_1(self):
        cache = PartitionedCache(
            RandomCandidatesArray(2048, R, seed=5), LRURanking(),
            FutilityScalingScheme(alphas=[1.0, 1.6]), 2)
        run_controlled(cache, [0.5, 0.5], 50_000, seed=6)
        assert cache.stats.aef(0) == pytest.approx(R / (R + 1), abs=0.02)

    def test_scaled_partition_aef_matches_analytic(self):
        alphas = [1.0, 2.5]
        cache = PartitionedCache(
            RandomCandidatesArray(2048, R, seed=7), LRURanking(),
            FutilityScalingScheme(alphas=alphas), 2)
        run_controlled(cache, [0.5, 0.5], 60_000, seed=8)
        sizes = [s / cache.num_lines for s in cache.actual_sizes]
        predicted = analytic_aef(alphas, sizes, R, 1)
        assert cache.stats.aef(1) == pytest.approx(predicted, abs=0.03)

    def test_eviction_cdf_matches_analytic(self):
        alphas = [1.0, 2.0]
        cache = PartitionedCache(
            RandomCandidatesArray(2048, R, seed=9), LRURanking(),
            FutilityScalingScheme(alphas=alphas), 2)
        run_controlled(cache, [0.5, 0.5], 60_000, seed=10)
        sizes = [s / cache.num_lines for s in cache.actual_sizes]
        samples = cache.stats.eviction_futility_samples(1)
        for y in (0.3, 0.6, 0.9):
            predicted = eviction_futility_cdf(alphas, sizes, R, 1, y)
            assert cdf_at(samples, y) == pytest.approx(predicted, abs=0.04)

    def test_random_ranking_gives_diagonal_cdf(self):
        """With random futility, any scheme's associativity CDF collapses
        to the diagonal F_WC(x) = x (the Section III worst case)."""
        cache = PartitionedCache(
            RandomCandidatesArray(1024, 1, seed=11), RandomRanking(seed=1),
            PartitioningFirstScheme(), 1)
        rng = random.Random(12)
        for _ in range(30_000):
            cache.access(rng.randrange(100_000), 0)
        samples = cache.stats.eviction_futility_samples(0)
        for y in (0.25, 0.5, 0.75):
            assert cdf_at(samples, y) == pytest.approx(y, abs=0.03)


class TestFeasibilityBound:
    def test_partition_cannot_exceed_holdable_fraction(self):
        """Section IV-B: with insertion fraction I, no replacement-based
        scheme can hold a partition above I**(1/R) of the cache.  Even PF
        (the most aggressive sizer) must fall short of an over-bound
        target."""
        insertion = 0.02
        bound = max_holdable_size_fraction(insertion, 4)  # R=4: bound ~0.38
        lines = 1024
        target0 = int(0.8 * lines)  # far above the holdable fraction
        cache = PartitionedCache(
            RandomCandidatesArray(lines, 4, seed=13), LRURanking(),
            PartitioningFirstScheme(), 2,
            targets=[target0, lines - target0])
        run_controlled(cache, [insertion, 1 - insertion], 60_000, seed=14)
        occupancy_fraction = cache.actual_sizes[0] / lines
        assert occupancy_fraction < 0.8
        # It lands in the vicinity of the analytical bound.
        assert occupancy_fraction == pytest.approx(bound, abs=0.08)

    def test_feasible_target_is_held(self):
        """Just inside the bound, PF holds the target."""
        lines = 1024
        cache = PartitionedCache(
            RandomCandidatesArray(lines, 4, seed=15), LRURanking(),
            PartitioningFirstScheme(), 2, targets=[256, 768])
        run_controlled(cache, [0.3, 0.7], 40_000, seed=16)
        assert cache.actual_sizes[0] == pytest.approx(256, abs=26)

"""Cross-product integration tests: schemes x rankings x arrays.

The library's composability claim — any scheme runs on any array with any
ranking (subject to documented constraints) — exercised on a matrix of
combinations the figure experiments do not cover, with full invariant
checking.
"""

import random

import pytest

from repro.cache.cache import PartitionedCache
from repro.core.futility import make_ranking
from repro.core.schemes.base import make_scheme
from repro.experiments.common import build_array
from repro.trace.access import annotate_next_use

ARRAYS = ("set-assoc", "random", "skew", "zcache")
SCHEMES = ("pf", "cqvp", "fs", "fs-feedback", "vantage", "prism",
           "unpartitioned")
RANKINGS = ("lru", "lfu", "coarse-ts-lru")


def drive_checked(cache, accesses=2500, parts=2, space=700, seed=0):
    rng = random.Random(seed)
    for _ in range(accesses):
        part = rng.randrange(parts)
        cache.access(part * 10**6 + rng.randrange(space), part)
    cache.check_invariants()
    return cache


@pytest.mark.parametrize("array_kind", ARRAYS)
@pytest.mark.parametrize("scheme_kind", SCHEMES)
def test_scheme_array_matrix(array_kind, scheme_kind):
    """Every (scheme, array) pair runs cleanly under exact LRU."""
    array = build_array(array_kind, 256, ways=8, candidates=8, seed=3)
    cache = PartitionedCache(array, make_ranking("lru"),
                             make_scheme(scheme_kind), 2)
    drive_checked(cache, seed=hash((array_kind, scheme_kind)) & 0xFFFF)
    assert sum(cache.actual_sizes) > 0


@pytest.mark.parametrize("ranking_kind", RANKINGS)
@pytest.mark.parametrize("scheme_kind", ("pf", "fs-feedback", "vantage"))
def test_scheme_ranking_matrix(ranking_kind, scheme_kind):
    """Scheme x ranking combinations on the Table II-style array."""
    cache = PartitionedCache(build_array("set-assoc", 256, ways=8),
                             make_ranking(ranking_kind),
                             make_scheme(scheme_kind), 2)
    drive_checked(cache, seed=hash((ranking_kind, scheme_kind)) & 0xFFFF)


@pytest.mark.parametrize("scheme_kind", ("pf", "fs", "vantage"))
def test_opt_ranking_with_schemes(scheme_kind):
    """OPT needs per-access next-use; every scheme must accept it."""
    rng = random.Random(5)
    parts = [rng.randrange(2) for _ in range(3000)]
    addrs = [parts[i] * 10**6 + rng.randrange(400) for i in range(3000)]
    # Next-use must be computed per thread-local stream, as the feeders do.
    streams = {0: [], 1: []}
    for i, (p, a) in enumerate(zip(parts, addrs)):
        streams[p].append(a)
    next_use = {p: annotate_next_use(s) for p, s in streams.items()}
    cursor = {0: 0, 1: 0}
    cache = PartitionedCache(build_array("set-assoc", 256, ways=8),
                             make_ranking("opt"), make_scheme(scheme_kind), 2)
    for p, a in zip(parts, addrs):
        cache.access(a, p, next_use=next_use[p][cursor[p]])
        cursor[p] += 1
    cache.check_invariants()


def test_zcache_with_fs_feedback_and_writes():
    """The heaviest composition: zcache relocations + coarse timestamps +
    feedback FS + dirty lines, all interacting."""
    cache = PartitionedCache(
        build_array("zcache", 256, ways=4, candidates=16, seed=7),
        make_ranking("coarse-ts-lru"), make_scheme("fs-feedback"), 2,
        targets=[192, 64])
    rng = random.Random(9)
    for _ in range(6000):
        part = rng.randrange(2)
        cache.access(part * 10**6 + rng.randrange(700), part,
                     is_write=rng.random() < 0.4)
    cache.check_invariants()
    assert sum(cache.stats.writebacks) > 0

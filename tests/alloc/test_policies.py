"""Tests for allocation policies."""

import pytest

from repro.alloc.policies import (
    EqualSharePolicy,
    QoSPolicy,
    StaticPolicy,
    UtilityBasedPolicy,
)
from repro.errors import ConfigurationError


class TestStaticPolicy:
    def test_fractions_normalized(self):
        p = StaticPolicy([2, 1, 1])
        assert p.allocate(100) == [50, 25, 25]

    def test_sum_exact_with_rounding(self):
        p = StaticPolicy([1, 1, 1])
        targets = p.allocate(100)
        assert sum(targets) == 100
        assert max(targets) - min(targets) <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticPolicy([])
        with pytest.raises(ConfigurationError):
            StaticPolicy([0, 0])
        with pytest.raises(ConfigurationError):
            StaticPolicy([-1, 2])
        with pytest.raises(ConfigurationError):
            StaticPolicy([1]).allocate(0)

    def test_equal_share(self):
        assert EqualSharePolicy(4).allocate(64) == [16, 16, 16, 16]
        with pytest.raises(ConfigurationError):
            EqualSharePolicy(0)


class TestQoSPolicy:
    def test_paper_allocation(self):
        """Fig. 7 layout: 4096 lines per subject, rest split equally."""
        p = QoSPolicy(num_subjects=4, num_background=28, subject_lines=4096)
        targets = p.allocate(131_072)
        assert targets[:4] == [4096] * 4
        assert len(targets) == 32
        assert sum(targets) == 131_072
        background = targets[4:]
        assert max(background) - min(background) <= 1

    def test_reservation_exceeds_capacity(self):
        p = QoSPolicy(2, 2, 100)
        with pytest.raises(ConfigurationError):
            p.allocate(150)

    def test_no_background_spreads_leftover(self):
        p = QoSPolicy(2, 0, 40)
        assert p.allocate(100) == [50, 50]

    def test_only_background(self):
        p = QoSPolicy(0, 4, 0)
        assert p.allocate(100) == [25, 25, 25, 25]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QoSPolicy(-1, 4, 10)
        with pytest.raises(ConfigurationError):
            QoSPolicy(0, 0, 10)
        with pytest.raises(ConfigurationError):
            QoSPolicy(2, 2, 0)


class TestUtilityBasedPolicy:
    def test_prefers_high_utility_curve(self):
        # Partition 0 saves 10 misses per granule; partition 1 saves 1.
        curve_steep = [100, 90, 80, 70, 60, 50]
        curve_flat = [100, 99, 98, 97, 96, 95]
        p = UtilityBasedPolicy([curve_steep, curve_flat], granule=10)
        targets = p.allocate(50)
        assert targets[0] > targets[1]
        assert sum(targets) == 50

    def test_lookahead_sees_past_plateau(self):
        """A plateau followed by a cliff must still attract allocation
        (the UCP lookahead property a greedy marginal rule misses)."""
        cliff = [100, 100, 100, 0, 0, 0]       # all utility at 3 granules
        gentle = [100, 98, 96, 94, 92, 90]
        p = UtilityBasedPolicy([cliff, gentle], granule=1)
        targets = p.allocate(4)
        assert targets[0] >= 3

    def test_minimum_granules(self):
        p = UtilityBasedPolicy([[10, 0, 0], [10, 10, 10]], granule=1,
                               minimum_granules=[0, 1])
        targets = p.allocate(2)
        assert targets[1] >= 1
        assert sum(targets) == 2

    def test_capacity_below_minimums(self):
        p = UtilityBasedPolicy([[1, 0], [1, 0]], minimum_granules=[2, 2])
        with pytest.raises(ConfigurationError):
            p.allocate(3)

    def test_saturated_curves_spread_leftover(self):
        p = UtilityBasedPolicy([[5, 0], [5, 0]], granule=1)
        targets = p.allocate(10)
        assert sum(targets) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UtilityBasedPolicy([])
        with pytest.raises(ConfigurationError):
            UtilityBasedPolicy([[1, 0], [1]])
        with pytest.raises(ConfigurationError):
            UtilityBasedPolicy([[1, 0]], granule=0)
        with pytest.raises(ConfigurationError):
            UtilityBasedPolicy([[1, 0]], minimum_granules=[1, 2])

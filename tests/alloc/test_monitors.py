"""Tests for the stack-distance utility monitors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.monitors import UtilityMonitor, profile_miss_curve
from repro.errors import ConfigurationError
from repro.trace.access import Trace


def brute_force_distances(addresses):
    """Reference Mattson stack distances."""
    stack = []
    out = []
    for addr in addresses:
        if addr in stack:
            d = stack.index(addr)
            out.append(d)
            stack.remove(addr)
        else:
            out.append(None)
        stack.insert(0, addr)
    return out


class TestUtilityMonitor:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UtilityMonitor(sampling=0)

    def test_cold_misses(self):
        m = UtilityMonitor()
        for a in [1, 2, 3]:
            assert m.access(a) is None
        assert m.cold_misses == 3
        assert m.histogram == {}

    def test_simple_distances(self):
        m = UtilityMonitor()
        for a in [1, 2, 1, 3, 2]:
            m.access(a)
        # 1 reused at distance 1; 2 reused at distance 2.
        assert m.histogram == {1: 1, 2: 1}

    @given(st.lists(st.integers(0, 12), max_size=120))
    @settings(max_examples=40)
    def test_property_matches_brute_force(self, addresses):
        m = UtilityMonitor()
        got = [m.access(a) for a in addresses]
        assert got == brute_force_distances(addresses)

    def test_consume_trace(self):
        m = UtilityMonitor().consume(Trace([1, 1, 2, 2]))
        assert m.accesses == 4
        assert m.histogram == {0: 2}


class TestMissCurve:
    def test_monotone_non_increasing(self):
        trace = Trace([i % 20 for i in range(400)])
        curve = profile_miss_curve(trace, max_lines=32)
        assert all(curve[i] >= curve[i + 1] for i in range(len(curve) - 1))

    def test_endpoints(self):
        trace = Trace([i % 10 for i in range(100)])
        curve = profile_miss_curve(trace, max_lines=16)
        # Zero capacity: every access misses.
        assert curve[0] == 100
        # Enough capacity for the whole working set: only cold misses.
        assert curve[-1] == 10

    def test_knee_at_working_set(self):
        """A cyclic scan over W lines misses fully below W and not at all
        at W (under the monitor's LRU-stack counting, distance W-1)."""
        w = 8
        trace = Trace([i % w for i in range(160)])
        curve = profile_miss_curve(trace, max_lines=16)
        assert curve[w - 1] == 160  # capacity w-1: every access misses
        assert curve[w] == w        # capacity w: cold misses only

    def test_granule(self):
        trace = Trace([i % 10 for i in range(100)])
        curve = profile_miss_curve(trace, max_lines=16, granule=4)
        assert len(curve) == 5

    def test_validation(self):
        m = UtilityMonitor()
        with pytest.raises(ConfigurationError):
            m.miss_curve(0)
        with pytest.raises(ConfigurationError):
            m.miss_curve(10, granule=0)

    def test_sampling_scales_distances(self):
        """With sampling, distances count only monitored lines and are
        multiplied back; the curve remains monotone and ends at the cold
        miss count."""
        trace = Trace([i % 64 for i in range(1280)])
        m = UtilityMonitor(sampling=4)
        m.consume(trace)
        curve = m.miss_curve(max_lines=128)
        assert all(curve[i] >= curve[i + 1] for i in range(len(curve) - 1))
        assert curve[-1] == m.cold_misses

"""ReapportionController and its online policies."""

import pytest

from repro.alloc.reapportion import (
    FairnessReapportionPolicy,
    PhaseAwareReapportionPolicy,
    ReapportionController,
    UCPReapportionPolicy,
)
from repro.errors import ConfigurationError

LINES = 512
GRANULE = 32


def _feed(controller, streams, rounds):
    """Round-robin the per-partition address streams; collect decisions."""
    decisions = []
    iters = {p: iter(stream) for p, stream in streams.items()}
    parts = sorted(streams)
    for i in range(rounds):
        p = parts[i % len(parts)]
        out = controller.observe(p, next(iters[p]))
        if out is not None:
            decisions.append(out)
    return decisions


def _loop(ws, base=0):
    i = 0
    while True:
        yield base + i % ws
        i += 1


class TestController:
    def test_epoch_cadence_is_access_driven(self):
        c = ReapportionController(LINES, interval=100, granule=GRANULE)
        c.register(0)
        c.register(1)
        decisions = _feed(c, {0: _loop(64), 1: _loop(200, base=10**6)}, 1000)
        assert c.epochs == 10
        assert len(decisions) == 10  # UCP decides every epoch

    def test_decisions_cover_registered_partitions(self):
        c = ReapportionController(LINES, interval=200, granule=GRANULE)
        c.register(0)
        c.register(1)
        (decision,) = _feed(c, {0: _loop(64), 1: _loop(200, base=10**6)}, 200)
        assert set(decision) == {0, 1}
        assert sum(decision.values()) <= LINES
        assert all(v >= GRANULE for v in decision.values())

    def test_ucp_favors_the_hungrier_tenant(self):
        c = ReapportionController(LINES, interval=2000, granule=GRANULE,
                                  policy=UCPReapportionPolicy())
        c.register(0)
        c.register(1)
        # Partition 1 loops a working set of ~10 granules (the loop wraps
        # several times, so its reuse cliff is visible in the miss curve);
        # partition 0 fits in one granule.
        (decision,) = _feed(
            c, {0: _loop(8), 1: _loop(300, base=10**6)}, 2000)
        assert decision[1] > decision[0]

    def test_register_deregister_round_trip(self):
        c = ReapportionController(LINES)
        c.register(3)
        assert c.registered() == [3]
        with pytest.raises(ConfigurationError, match="already"):
            c.register(3)
        c.deregister(3)
        assert c.registered() == []
        with pytest.raises(ConfigurationError, match="not registered"):
            c.deregister(3)

    def test_unregistered_observations_still_tick_the_epoch(self):
        c = ReapportionController(LINES, interval=50, granule=GRANULE)
        for i in range(50):
            c.observe(9, i)  # partition 9 was never registered
        assert c.epochs == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReapportionController(0)
        with pytest.raises(ConfigurationError):
            ReapportionController(LINES, interval=0)


class TestPhaseAware:
    def test_stable_phase_skips_reapportioning(self):
        policy = PhaseAwareReapportionPolicy(threshold=0.10)
        c = ReapportionController(LINES, interval=200, granule=GRANULE,
                                  policy=policy)
        c.register(0)
        c.register(1)
        streams = {0: _loop(64), 1: _loop(100, base=10**6)}
        decisions = _feed(c, streams, 1600)
        # The cold-start epoch and the first warm epoch decide (the
        # signature shifts once compulsory misses wash out); identical
        # epochs after that are recognized as phase-stable.
        assert len(decisions) == 2
        assert policy.stable_epochs == 6

    def test_phase_change_triggers_a_decision(self):
        policy = PhaseAwareReapportionPolicy(threshold=0.05)
        c = ReapportionController(LINES, interval=200, granule=GRANULE,
                                  policy=policy)
        c.register(0)
        c.register(1)
        _feed(c, {0: _loop(64), 1: _loop(100, base=10**6)}, 800)
        # Tenant 0's behavior flips from cache-friendly loop to scan.
        scan = _loop(10**9)  # never reuses: pure cold misses
        late = _feed(c, {0: scan, 1: _loop(100, base=10**6)}, 400)
        assert late, "a phase change must force a reapportion"

    def test_membership_change_always_decides(self):
        policy = PhaseAwareReapportionPolicy(threshold=0.5)
        c = ReapportionController(LINES, interval=200, granule=GRANULE,
                                  policy=policy)
        c.register(0)
        c.register(1)
        _feed(c, {0: _loop(64), 1: _loop(100, base=10**6)}, 200)
        c.register(2)
        late = _feed(c, {0: _loop(64), 1: _loop(100, base=10**6),
                         2: _loop(64, base=2 * 10**6)}, 201)
        assert late, "an arrival must force a reapportion"


class TestFairness:
    def test_moves_capacity_toward_the_slowed_tenant(self):
        policy = FairnessReapportionPolicy(miss_penalty=20.0)
        c = ReapportionController(LINES, interval=600, granule=GRANULE,
                                  policy=policy)
        c.register(0)
        c.register(1)
        # Tenant 1 is capacity-sensitive (large loop); tenant 0 is tiny.
        (decision,) = _feed(
            c, {0: _loop(8), 1: _loop(400, base=10**6)}, 600)
        assert decision[1] >= decision[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FairnessReapportionPolicy(hit_latency=0)
        with pytest.raises(ConfigurationError):
            PhaseAwareReapportionPolicy(threshold=0)

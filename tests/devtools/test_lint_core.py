"""reprolint framework tests: registry, suppressions, scoping, resolution."""

import ast

import pytest

from repro.devtools.lint import (
    Checker,
    LintConfigError,
    Rule,
    dotted_name,
    import_aliases,
    parse_suppressions,
    register_rule,
    rule_ids,
    unregister_rule,
)

BUILTIN_IDS = {"DET001", "DET002", "DET003", "COR001", "COR002", "COR003"}


def test_builtin_ruleset_registered():
    assert BUILTIN_IDS <= set(rule_ids())


def test_register_rule_mirrors_experiment_registry():
    @register_rule
    class ProbeRule(Rule):
        rule_id = "ZZZ901"
        summary = "probe"

        def check(self, ctx):
            return iter(())

    try:
        assert "ZZZ901" in rule_ids()
        with pytest.raises(LintConfigError):
            register_rule(ProbeRule)  # duplicate stable ID
    finally:
        unregister_rule("ZZZ901")
    assert "ZZZ901" not in rule_ids()


@pytest.mark.parametrize("rule_id", ["", "det001", "DET1", "X001", "DET0001"])
def test_register_rule_rejects_malformed_ids(rule_id):
    class BadRule(Rule):
        summary = "bad"

    BadRule.rule_id = rule_id
    with pytest.raises(LintConfigError):
        register_rule(BadRule)


def test_register_rule_requires_summary():
    class NoSummary(Rule):
        rule_id = "ZZZ902"
        summary = ""

    with pytest.raises(LintConfigError):
        register_rule(NoSummary)


def test_custom_rule_runs_through_checker():
    @register_rule
    class NoPrintRule(Rule):
        rule_id = "ZZZ903"
        summary = "flag print calls"

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    yield self.finding(ctx, node, "print call")

    try:
        checker = Checker([NoPrintRule])
        findings = checker.check_source("print('hello')\n")
        assert [f.rule_id for f in findings] == ["ZZZ903"]
    finally:
        unregister_rule("ZZZ903")


def test_parse_suppressions_lines_and_ids():
    source = (
        "x = 1  # reprolint: disable=DET001\n"
        "y = 2\n"
        "z = 3  # reprolint: disable=DET002, COR003\n"
        "w = 4  # reprolint: disable=all\n"
    )
    table = parse_suppressions(source)
    assert table[1] == frozenset({"DET001"})
    assert 2 not in table
    assert table[3] == frozenset({"DET002", "COR003"})
    assert table[4] == frozenset({"all"})


def test_suppression_silences_only_named_rule():
    checker = Checker()
    noisy = "import random\nr = random.Random()\n"
    assert any(f.rule_id == "DET001" for f in checker.check_source(noisy))
    silenced = ("import random\n"
                "r = random.Random()  # reprolint: disable=DET001\n")
    assert checker.check_source(silenced) == []
    wrong_id = ("import random\n"
                "r = random.Random()  # reprolint: disable=DET002\n")
    assert any(f.rule_id == "DET001" for f in checker.check_source(wrong_id))


def test_no_suppressions_mode_reports_anyway():
    source = ("import random\n"
              "r = random.Random()  # reprolint: disable=DET001\n")
    assert Checker(respect_suppressions=False).check_source(source)


def test_import_aliases_resolution():
    tree = ast.parse(
        "import random\n"
        "import numpy as np\n"
        "from datetime import datetime\n"
        "from time import time as wall\n"
        "from . import sibling\n")
    aliases = import_aliases(tree)
    assert aliases["random"] == "random"
    assert aliases["np"] == "numpy"
    assert aliases["datetime"] == "datetime.datetime"
    assert aliases["wall"] == "time.time"
    assert "sibling" not in aliases  # relative imports are ignored


def test_dotted_name_requires_tracked_root():
    aliases = {"np": "numpy"}
    node = ast.parse("np.random.default_rng", mode="eval").body
    assert dotted_name(node, aliases) == "numpy.random.default_rng"
    unknown = ast.parse("rng.random", mode="eval").body
    assert dotted_name(unknown, aliases) is None


def test_include_scope_only_binds_inside_package():
    source = "x = 1.0\nflag = x == 0.5\n"
    checker = Checker()
    in_core = checker.check_source(source, path="src/repro/core/probe.py")
    assert any(f.rule_id == "COR001" for f in in_core)
    elsewhere = checker.check_source(source, path="src/repro/trace/probe.py")
    assert not any(f.rule_id == "COR001" for f in elsewhere)
    standalone = checker.check_source(source, path="snippets/probe.py")
    assert any(f.rule_id == "COR001" for f in standalone)


def test_allow_scope_skips_sanctioned_files():
    source = "import random\nrandom.seed(7)\n"
    checker = Checker()
    sanctioned = checker.check_source(
        source, path="src/repro/runner/pool.py")
    assert not any(f.rule_id == "DET001" for f in sanctioned)
    ordinary = checker.check_source(
        source, path="src/repro/runner/cells.py")
    assert any(f.rule_id == "DET001" for f in ordinary)


def test_findings_are_sorted_and_renderable():
    source = ("import random\n"
              "b = random.Random()\n"
              "a = random.Random()\n")
    findings = Checker().check_source(source, path="probe.py")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = findings[0].render()
    assert rendered.startswith("probe.py:2:")
    assert "DET001" in rendered
    payload = findings[0].to_dict()
    assert payload["rule"] == "DET001"
    assert payload["line"] == 2


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        Checker().check_source("def broken(:\n")

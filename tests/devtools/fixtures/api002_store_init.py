"""API002 fixture: stands in for ``repro/store/__init__.py``.

Linted under that virtual path, this package module imports only the
``base`` and ``sqlite`` backend modules — the ``rocks`` backend defined
in ``api002_backend.py`` is left out, so its ``@register_backend``
decorator never runs: exactly the drift API002 exists to catch.
"""

from repro.store import base      # noqa: F401
from repro.store import sqlite    # noqa: F401

"""Known-bad scenario engine: event schedules read host clocks.

A lifecycle timeline keyed to wall or monotonic time fires at different
access indices on different machines (and across ``--jobs``), so the
resulting tenant histories — and every fairness metric derived from
them — stop being byte-reproducible.  Linted under the virtual path
``repro/sim/scenario.py``, where DET004 bans every host-clock read.
"""

import time


class ClockScenario:
    def __init__(self, events):
        self.events = events
        self.started = time.monotonic()  # schedule epoch: host clock

    def due(self):
        elapsed = time.monotonic() - self.started
        return [e for e in self.events if e.after_s <= elapsed]

    def run(self, cache, workload, seconds):
        deadline = time.time() + seconds
        accesses = 0
        while time.time() < deadline:  # run length in wall time
            for event in self.due():
                event.apply(cache)
            cache.access(workload.address(accesses), 0)
            accesses += 1
        return accesses

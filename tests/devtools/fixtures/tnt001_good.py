"""TNT001 clean: everything hashed or stored derives from config + seed."""

import hashlib
import random


def cache_key(config_items, seed):
    blob = repr((sorted(config_items), seed)).encode()
    return hashlib.sha256(blob)  # pure function of config + seed


def seeded_payload(store, key, seed):
    rng = random.Random(seed)  # seeded: reproducible by construction
    payload = bytes(rng.getrandbits(8) for _ in range(16))
    store.put(key, payload)


def content_digest(path_bytes):
    return hashlib.blake2b(path_bytes, digest_size=16)

"""Known-good COR003 fixture: typed exception handlers — zero findings."""


def careful(work):
    try:
        return work()
    except ValueError:
        return None
    except (KeyError, IndexError) as exc:
        raise RuntimeError("lookup failed") from exc
    except Exception:  # broad but explicit is allowed (COR003 is bare-only)
        return None

"""Suppression fixture: every hazard carries a disable comment — clean."""

import random
import time

unseeded = random.Random()  # reprolint: disable=DET001
started = time.time()  # reprolint: disable=DET002,DET004
both = (random.Random(), time.time())  # reprolint: disable=DET001,DET002,DET004
anything = random.randint(0, 3)  # reprolint: disable=all


def f(items=[]):  # reprolint: disable=COR002
    try:
        for x in {1, 2, 3}:  # reprolint: disable=DET003
            items.append(x)
    except:  # reprolint: disable=COR003
        pass
    return items

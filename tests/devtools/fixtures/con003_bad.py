"""CON003 trips: thread-shared sqlite connections escape their class."""

import sqlite3
import threading


class Con003LeakyStore:
    def __init__(self, path):
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)

    def raw(self):
        return self._conn  # BAD: raw handle escapes, no lock contract

    def cursor(self):
        return self._conn.cursor()  # BAD: cursor escapes the same way

    def close(self):
        with self._lock:
            self._conn.close()

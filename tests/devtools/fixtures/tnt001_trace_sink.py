"""Half of the TNT001 trace-identity pair: the cross-module ID leak.

Per-file this module is spotless: no clock is read here.  But
``claim_stamp()`` returns ``time.time()`` from another module, and
folding it into the *name* handed to ``span_id`` keys the span's
identity on the wall clock — two workers replaying the same cell would
mint different span IDs, the stitcher would fork the tree instead of
merging duplicates, and the canonical projection would stop being
byte-identical across ``--jobs``.  TNT001's trace-id derivation sink
fires with the full provenance chain.
"""

from repro.obs.trace import span_id
from repro.store.queue import claim_stamp


def stamped_span(trace_id, key):
    stamp = claim_stamp()
    return span_id(trace_id, "claim", f"{key}@{stamp:.0f}", 1)

"""Known-bad DET002 fixture: wall-clock reads that must trip the rule."""

import time
from datetime import date, datetime

started_at = time.time()
started_ns = time.time_ns()
stamp = datetime.now()
utc = datetime.utcnow()
today = date.today()


def result_payload() -> dict:
    return {"generated": time.strftime("%Y-%m-%d"), "value": 1.0}

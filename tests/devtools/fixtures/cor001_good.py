"""Known-good COR001 fixture: tolerances and integer equality — clean."""

import math


def check(alpha: float, ratio: float, count: int) -> bool:
    if math.isclose(alpha, 0.1, rel_tol=1e-12):
        return True
    if abs(ratio - 1 / 3) > 1e-9:
        return False
    if count == 0:  # integer equality is exact and fine
        return True
    return count != 16

"""Known-good DET001 fixture: seeded construction only — zero findings."""

import random

import numpy as np

SEED = 42

seeded = random.Random(SEED)
keyword = random.Random(x=SEED)
generator = np.random.default_rng(SEED)
legacy = np.random.RandomState(seed=SEED)

value = seeded.randint(0, 10)
weights = generator.random(4)


class Sampler:
    """Instances derive their generator from an explicit config seed."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def draw(self) -> float:
        return self._rng.random()


# A local variable shadowing the module name is not module-global use.
def shadowed(random: "Sampler") -> float:
    return random.draw()


class Simulator:
    """The sim.engine pattern: a per-simulation generator seeded from the
    system config, so replays are reproducible and concurrent simulations
    never share generator state."""

    def __init__(self, config_seed: int) -> None:
        self._rng = random.Random(config_seed)

    def replay(self, trace) -> int:
        writes = 0
        rand = self._rng.random
        for _addr in trace:
            if rand() < 0.3:
                writes += 1
        return writes

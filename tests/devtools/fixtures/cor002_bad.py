"""Known-bad COR002 fixture: mutable defaults that must trip the rule."""

import collections


def accumulate(value, bucket=[]):
    bucket.append(value)
    return bucket


def tally(key, *, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def uniques(item, seen=set()):
    seen.add(item)
    return seen


def grouped(pairs, groups=collections.defaultdict(list)):
    for key, value in pairs:
        groups[key].append(value)
    return groups


def fresh(n, items=list()):
    items.append(n)
    return items

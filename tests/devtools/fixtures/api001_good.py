"""API001 clean: fields, flags and legacy aliases all agree."""

import argparse
from dataclasses import dataclass

_LEGACY_ALIASES = {
    "cache": "store",  # retired kwarg mapping onto a live field
}


@dataclass(frozen=True)
class RunConfig:
    jobs: int = 1
    store: str = ""
    retries: int = 0
    progress: object = None  # reprolint: cli-exempt


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--store", default="")
    parser.add_argument("--retries", type=int, default=0)
    return parser

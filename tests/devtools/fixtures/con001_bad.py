"""CON001 trips: guarded attributes touched outside their lock."""

import threading


class Con001Counter:
    """Explicitly annotated guard, violated twice."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # reprolint: guarded-by=_lock

    def bump(self):
        self._count += 1  # BAD: write outside the lock

    def peek(self):
        return self._count  # BAD: read outside the lock

    def bump_safely(self):
        with self._lock:
            self._count += 1


class Con001Inferred:
    """No annotation: majority-under-lock inference flags the straggler."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        with self._lock:
            items = list(self._items)
            del self._items[:]
        return items

    def racy_len(self):
        return len(self._items)  # BAD: every other access holds the lock


class Con001Outsider:
    """Cross-object reach-in: grabbing another object's lock."""

    def __init__(self, counter: Con001Counter):
        self.counter = counter

    def reach_in(self):
        with self.counter._lock:  # BAD: couple to Con001Counter's locking
            return self.counter.peek()

"""Known-bad COR003 fixture: bare except clauses that must trip the rule."""


def swallow_everything(work):
    try:
        return work()
    except:
        return None


def nested(work):
    try:
        try:
            return work()
        except:
            raise
    except ValueError:
        return None

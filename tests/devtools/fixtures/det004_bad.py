"""Known-bad DET004 fixture: host-clock reads in simulation code.

Everything here pattern-matches code that belongs in ``repro/cache/``,
``repro/core/`` or ``repro/sim/``, where *any* host clock — wall or
monotonic — couples simulated behavior to the machine it runs on.
"""

import time
from time import monotonic, perf_counter


class CoarseTimestamp:
    def touch(self) -> float:
        return time.time()


def sample_window_elapsed(start: float) -> float:
    return time.perf_counter() - start


def epoch_now() -> int:
    return time.time_ns()


def feedback_deadline() -> float:
    return monotonic() + 0.5


def profiling_tick() -> float:
    return perf_counter()


def futility_budget() -> float:
    return time.process_time()

"""CON002 trips: monotonic readings serialized across process bounds."""

import json
import time


def claim_with_monotonic_lease(conn, item_id):
    deadline = time.monotonic() + 60.0
    conn.execute(  # BAD: lease compared by *other* processes
        "UPDATE work_queue SET lease_expires = ? WHERE item_id = ?",
        (deadline, item_id))


def renew_with_monotonic_lease(conn, item_id, worker):
    fresh = time.monotonic() + 60.0
    conn.execute(  # BAD: renewed deadline read by *other* processes
        "UPDATE work_queue SET lease_expires = ? "
        "WHERE item_id = ? AND worker = ?",
        (fresh, item_id, worker))


def manifest_with_perf_counter(path):
    doc = {"claimed_at": time.perf_counter()}
    blob = json.dumps(doc)  # BAD: perf_counter is process-local
    with open(path, "w") as fh:
        fh.write(blob)
    return blob

"""Project-phase suppression fixture: cross-module hazards, all silenced.

Each CON001/CON003/TNT001 violation below carries a ``disable`` comment
on the finding line, so the *whole-program* phase must honour the same
per-line suppressions the per-file phase does.  Per-file hazards on the
same lines (DET002 on the clock read) are silenced too, keeping the
fixture inert in the directory-walk test.
"""

import hashlib
import sqlite3
import threading
import time


class SupProjStore:
    def __init__(self, path):
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(  # reprolint: guarded-by=_lock
            path, check_same_thread=False)

    def raw(self):
        return self._conn  # reprolint: disable=CON001,CON003

    def close(self):
        with self._lock:
            self._conn.close()


def sup_proj_key(blob):
    stamp = time.time()  # reprolint: disable=DET002,DET004
    salted = blob + str(stamp).encode()
    return hashlib.sha256(salted)  # reprolint: disable=TNT001

"""Known-good COR002 fixture: None/immutable defaults — zero findings."""


def accumulate(value, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(value)
    return bucket


def tally(key, *, counts=None):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts


def windowed(values, shape=(4, 4), label="cells", limit=16):
    return [values[:limit]] * shape[0], label

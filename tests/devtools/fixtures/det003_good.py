"""Known-good DET003 fixture: sorted iteration / membership — zero findings."""

KINDS = {"fs", "pf", "vantage"}


def render(table: dict) -> str:
    lines = []
    for kind in sorted(KINDS):
        lines.append(kind)
    for name in sorted(table):
        lines.append(name)
    for key, value in table.items():  # insertion-ordered pairs, not a set
        lines.append(f"{key}={value}")
    if "fs" in KINDS:  # membership tests don't observe iteration order
        lines.append("fs")
    return ",".join(sorted(set(lines)))

"""Known-bad DET001 fixture: every statement below must trip the rule."""

import random

import numpy as np

unseeded = random.Random()
entropy = random.SystemRandom()
generator = np.random.default_rng()
legacy = np.random.RandomState()

value = random.randint(0, 10)
weights = np.random.rand(4)
random.seed(1234)
np.random.seed(1234)

"""Known-bad DET001 fixture: every statement below must trip the rule."""

import random

import numpy as np

unseeded = random.Random()
entropy = random.SystemRandom()
generator = np.random.default_rng()
legacy = np.random.RandomState()

value = random.randint(0, 10)
weights = np.random.rand(4)
random.seed(1234)
np.random.seed(1234)


def replay(trace):
    """Module-level RNG inside a replay loop: the write-marking draws
    depend on whatever touched the global generator before this call."""
    writes = 0
    for _addr in trace:
        if random.random() < 0.3:
            writes += 1
    return writes

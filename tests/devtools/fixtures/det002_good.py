"""Known-good DET002 fixture: monotonic interval timing — zero findings.

Monotonic clocks are sanctioned for *interval* measurement streamed to
stderr; they never stamp results or cache keys.
"""

import time


def timed(work) -> float:
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def timed_coarse(work) -> float:
    start = time.monotonic()
    work()
    return time.monotonic() - start


def stamp_from_config(config_date: str) -> dict:
    """Timestamps must come from the config, not the wall clock."""
    return {"generated": config_date, "value": 1.0}

"""TNT001 trips: wall-clock/entropy taint reaches reproducible data."""

import hashlib
import os
import random
import time


def stamped_cache_key(config_blob):
    stamp = time.time()
    tag = f"run-{stamp:.0f}"  # taint survives the f-string
    return hashlib.sha256(tag.encode() + config_blob)  # BAD: keyed on clock


def entropy_payload(store, key):
    nonce = os.urandom(16)
    payload = b"result:" + nonce
    store.put(key, payload)  # BAD: payload differs every run


def jittered_digest(values):
    jitter = random.random()  # global RNG: interpreter-state dependent
    doc = repr((values, jitter))
    return hashlib.md5(doc.encode())  # BAD: digest depends on RNG state

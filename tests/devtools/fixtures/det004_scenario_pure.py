"""Known-good scenario engine: schedules are pure functions of access
counts.

The shape the real ``repro/sim/scenario.py`` follows: every event fires
at a scripted global access index, workload addresses are arithmetic in
the tenant's own access counter, and the run length is an access count
— no host clock anywhere, so two runs of the same script are
byte-identical by construction.
"""


class PureScenario:
    def __init__(self, events, total_accesses):
        self.events = sorted(events, key=lambda e: e.at)
        self.total_accesses = total_accesses

    def run(self, cache, workload):
        next_event = 0
        hits = 0
        for g in range(self.total_accesses):
            while (next_event < len(self.events)
                    and self.events[next_event].at == g):
                self.events[next_event].apply(cache)
                next_event += 1
            if cache.access(workload.address(g), 0):
                hits += 1
        return hits

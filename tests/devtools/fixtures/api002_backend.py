"""API002 fixture: a registered backend module (virtual repro/store/rocks.py).

Defines a ``@register_backend`` store.  Whether API002 fires depends on
the ``__init__`` stand-in it is indexed with: ``api002_store_init.py``
omits the import (drift), ``api002_good_init.py`` includes it (clean).
"""

from repro.store.base import Store, register_backend


@register_backend
class RocksStore(Store):
    scheme = "rocks"

    def put(self, key, payload):
        raise NotImplementedError

    def get(self, key):
        raise NotImplementedError

"""Known-good DET004 fixture: simulated time driven off the access
counter — zero findings.

The simulation substrate's only clock is the deterministic access
count: sampling windows, coarse timestamps and feedback epochs all
derive from it, so two runs of the same trace are byte-identical on
any machine at any ``--jobs N``.
"""


class SamplingWindow:
    """Fires every ``interval`` accesses; no host clock anywhere."""

    def __init__(self, interval: int) -> None:
        self.interval = interval
        self.accesses = 0
        self.samples = 0

    def tick(self) -> bool:
        self.accesses += 1
        if self.accesses % self.interval == 0:
            self.samples += 1
            return True
        return False


def coarse_timestamp(accesses: int, shift: int = 8) -> int:
    """Coarse logical timestamps quantize the access count."""
    return accesses >> shift


def feedback_epoch(accesses: int, epoch_length: int) -> int:
    return accesses // epoch_length

"""Half of the TNT001 acceptance pair: the cross-module clock leak.

Per-file, this module is spotless: no clock is read here, so DET002 and
every other syntactic rule stay silent.  Whole-program analysis sees
through it: ``lease_stamp()`` returns ``time.time()`` two modules away,
and hashing its result keys the cache on the wall clock — TNT001 fires
with the full provenance chain.
"""

import hashlib

from repro.store.queue import lease_stamp


def stamped_key(config_blob):
    stamp = lease_stamp(0.0)
    return hashlib.sha256(config_blob + str(stamp).encode())

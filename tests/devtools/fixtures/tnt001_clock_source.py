"""Half of the TNT001 acceptance pair: a *sanctioned* wall-clock read.

Linted per-file under its virtual path (``repro/store/queue.py``) this
module is completely clean: DET002 explicitly allows wall-clock leases
in the queue module, and nothing here hashes or stores the value.  The
leak only exists across the module boundary — see
``tnt001_clock_sink.py``.
"""

import time


def lease_stamp(lease_seconds):
    """Wall-clock lease expiry (sanctioned: compared across workers)."""
    return time.time() + lease_seconds

"""API002 clean: stands in for ``repro/store/__init__.py``.

Unlike ``api002_store_init.py`` this variant imports the ``rocks``
module, so its ``@register_backend`` decorator runs at import time and
the backend really exists in ``STORE_BACKENDS``.
"""

from repro.store import base      # noqa: F401
from repro.store import rocks     # noqa: F401
from repro.store import sqlite    # noqa: F401

"""CON003 clean: the shared connection only leaves under the lock
contract (lexically locked, or declared with requires-lock)."""

import sqlite3
import threading
from contextlib import contextmanager


class Con003SafeStore:
    def __init__(self, path):
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)

    def connection(self):  # reprolint: requires-lock=_lock
        return self._conn

    @contextmanager
    def locked(self):
        with self._lock:
            yield self.connection()

    def execute(self, sql, params=()):
        with self.locked() as conn:
            conn.execute(sql, tuple(params))

    def close(self):
        with self._lock:
            self._conn.close()

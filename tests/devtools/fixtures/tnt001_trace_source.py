"""Half of the TNT001 trace-identity pair: a *sanctioned* clock read.

Linted per-file under its virtual path (``repro/store/queue.py``) this
module is clean: DET002 allows wall-clock leases in the queue module,
and nothing here derives an ID from the value.  The identity bug only
exists across the module boundary — see ``tnt001_trace_sink.py``.
"""

import time


def claim_stamp():
    """Wall-clock claim timestamp (sanctioned: lease bookkeeping)."""
    return time.time()

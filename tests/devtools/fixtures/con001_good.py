"""CON001 clean: every guarded access holds the lock (or is sanctioned)."""

import threading


class Con001SafeCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # reprolint: guarded-by=_lock
        self._count = self._reset_value()  # construction writes are fine

    def _reset_value(self):
        return 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        with self._lock:
            return self._count

    def _bump_locked(self):  # reprolint: requires-lock=_lock
        # Callers hold the lock; the annotation states the contract.
        self._count += 1

    def bump_twice(self):
        with self._lock:
            self._bump_locked()
            self._bump_locked()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_lock"] = None
        return state


class Con001SafeCaller:
    """Collaborates through the owning class's methods, never its lock."""

    def __init__(self, counter: Con001SafeCounter):
        self.counter = counter

    def observe(self):
        return self.counter.peek()

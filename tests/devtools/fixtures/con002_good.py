"""CON002 clean: cross-process leases use the wall clock (sanctioned in
the queue module), monotonic stays process-local."""

import time


def claim_with_wall_lease(conn, item_id, lease):
    deadline = time.time() + lease  # wall clock: valid across workers
    conn.execute(
        "UPDATE work_queue SET lease_expires = ? WHERE item_id = ?",
        (deadline, item_id))


def renew_with_wall_lease(conn, item_id, worker, lease):
    deadline = time.time() + lease  # heartbeat renewal: same contract
    conn.execute(
        "UPDATE work_queue SET lease_expires = ? "
        "WHERE item_id = ? AND worker = ?",
        (deadline, item_id, worker))


def timed_drain(conn):
    t0 = time.monotonic()
    conn.execute("DELETE FROM work_queue WHERE status = 'done'", ())
    return time.monotonic() - t0  # stays in-process: never serialized

"""Queue-lease wall-clock fixture for DET002's allow-list.

Claim leases must be comparable across worker *processes*, so the work
queue deliberately reads ``time.time()`` — sanctioned only under the
virtual path ``repro/store/queue.py``.  The same code anywhere else in
the store package (or any result-producing module) must trip DET002.
"""

import time


def claim_expiry(lease: float) -> float:
    return time.time() + lease


def lease_expired(expires: float) -> bool:
    return expires < time.time()


def renew_expiry(lease: float) -> float:
    # The heartbeat renewal writes a fresh wall-clock deadline for the
    # same cross-process comparability reason the claim does.
    return time.time() + lease

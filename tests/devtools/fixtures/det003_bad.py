"""Known-bad DET003 fixture: unordered iteration that must trip the rule."""

KINDS = {"fs", "pf", "vantage"}


def render(table: dict) -> str:
    lines = []
    for kind in KINDS:
        lines.append(kind)
    for name in table.keys():
        lines.append(name)
    for tag in {"a", "b", "c"}:
        lines.append(tag)
    for item in set(table):
        lines.append(item)
    parts = [x for x in frozenset(lines)]
    return ",".join(set(parts)) + "".join(parts)

"""Known-bad COR001 fixture: exact float comparisons that must trip."""


def check(alpha: float, ratio: float, total: float) -> bool:
    if alpha == 0.1:
        return True
    if ratio != 1 / 3:
        return False
    if float(total) == alpha:
        return True
    return -0.5 == alpha

"""API001 trips: RunConfig fields drift from the CLI and the shim."""

import argparse
from dataclasses import dataclass

_LEGACY_ALIASES = {
    "cache": "store",
    "jobs": "jobs",          # BAD: alias shadows a live field
    "workers": "num_workers",  # BAD: maps to a field that does not exist
}


@dataclass(frozen=True)
class RunConfig:
    jobs: int = 1
    store: str = ""
    retries: int = 0   # BAD: no --retries flag anywhere in this project


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--store", default="")
    return parser

"""Whole-program machinery: index cache invalidation, SARIF output,
baseline round-trips, and the ``--explain`` surface — plus regression
coverage for the lock-discipline refactor the project rules forced on
the real store package."""

import json
from pathlib import Path

import pytest

import repro
from repro.devtools.lint import Checker, main
from repro.devtools.lint.baseline import (
    FINGERPRINT_KEY,
    filter_baselined,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.core import Finding
from repro.devtools.lint.index import ProjectIndexer, build_file_index
from repro.devtools.lint.sarif import SARIF_VERSION, to_sarif

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_DIR = Path(repro.__file__).parent
SRC_DIR = PACKAGE_DIR.parent


# -------------------------------------------------------- index cache --


def _store_sources():
    pairs = []
    for path in sorted((PACKAGE_DIR / "store").rglob("*.py")):
        pairs.append((str(path), path.read_text()))
    return pairs


def test_index_cache_reuses_unchanged_files(tmp_path):
    cache = tmp_path / "index.json"
    pairs = _store_sources()

    first = ProjectIndexer(str(cache)).build(pairs)
    assert first.stats.built == len(pairs)
    assert first.stats.reused == 0
    assert cache.exists()

    second = ProjectIndexer(str(cache)).build(pairs)
    assert second.stats.built == 0
    assert second.stats.reused == len(pairs)


def test_index_cache_recomputes_only_the_edited_file(tmp_path):
    cache = tmp_path / "index.json"
    pairs = _store_sources()
    ProjectIndexer(str(cache)).build(pairs)

    path0, source0 = pairs[0]
    pairs[0] = (path0, source0 + "\n# touched\n")
    rebuilt = ProjectIndexer(str(cache)).build(pairs)
    assert rebuilt.stats.built == 1
    assert rebuilt.stats.reused == len(pairs) - 1


def test_index_cache_version_mismatch_discards(tmp_path):
    cache = tmp_path / "index.json"
    pairs = _store_sources()
    ProjectIndexer(str(cache)).build(pairs)
    doc = json.loads(cache.read_text())
    doc["version"] = -1
    cache.write_text(json.dumps(doc))
    rebuilt = ProjectIndexer(str(cache)).build(pairs)
    assert rebuilt.stats.built == len(pairs)


def test_index_roundtrips_through_json():
    for path, source in _store_sources():
        idx = build_file_index(source, path)
        clone = type(idx).from_json(idx.to_json())
        assert clone.to_json() == idx.to_json()


def test_checker_threads_cache_through(tmp_path):
    cache = tmp_path / "index.json"
    checker = Checker(index_cache=str(cache))
    checker.check_paths([PACKAGE_DIR / "store"])
    assert checker.last_index is not None
    assert checker.last_index.stats.built > 0

    again = Checker(index_cache=str(cache))
    again.check_paths([PACKAGE_DIR / "store"])
    assert again.last_index.stats.built == 0
    assert again.last_index.stats.reused == checker.last_index.stats.total


# -------------------------------------------------------------- SARIF --


def _sarif_over_src(capsys, *extra):
    assert main(["--format", "sarif", *extra, str(SRC_DIR)]) == 0
    return json.loads(capsys.readouterr().out)


def test_sarif_output_is_valid_2_1_0(capsys):
    doc = _sarif_over_src(capsys)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    assert len(doc["runs"]) == 1
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert "CON001" in rule_ids and "TNT001" in rule_ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
    assert doc["runs"][0]["results"] == []  # the src tree is clean


def test_sarif_results_carry_locations_and_fingerprints():
    findings = Checker().check_file(FIXTURES / "cor003_bad.py")
    doc = to_sarif(findings, [type(r) for r in Checker().rules])
    results = doc["runs"][0]["results"]
    assert results
    for res in results:
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"]
        assert loc["region"]["startLine"] >= 1
        assert FINGERPRINT_KEY in res["partialFingerprints"]
        assert res["ruleId"] == "COR003"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["rules"][res["ruleIndex"]]["id"] == res["ruleId"]


# ----------------------------------------------------------- baseline --


def _findings():
    return Checker().check_file(FIXTURES / "cor003_bad.py")


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    target = tmp_path / "baseline.json"
    findings = _findings()
    write_baseline(findings, str(target))
    known = load_baseline(str(target))
    assert len(known) == len(findings)
    fresh, suppressed = filter_baselined(findings, known)
    assert fresh == [] and suppressed == len(findings)


def test_baseline_fingerprints_survive_line_shifts():
    source = (FIXTURES / "cor003_bad.py").read_text()
    shifted = "# a new header comment\n" + source
    base = fingerprint_findings(
        Checker().check_source(source, path="fixtures/cor003_bad.py"),
        sources={"fixtures/cor003_bad.py": source})
    moved = fingerprint_findings(
        Checker().check_source(shifted, path="fixtures/cor003_bad.py"),
        sources={"fixtures/cor003_bad.py": shifted})
    assert [fp for _, fp in base] == [fp for _, fp in moved]


def test_baseline_invalidates_when_the_line_changes(tmp_path):
    findings = _findings()
    target = tmp_path / "baseline.json"
    write_baseline(findings, str(target))
    known = load_baseline(str(target))
    edited = [Finding(path=f.path, line=f.line, col=f.col,
                      rule_id=f.rule_id, message=f.message)
              for f in findings]
    sources = {findings[0].path: "completely = 'different'\n"}
    fresh, _ = filter_baselined(edited, known, sources=sources)
    assert fresh  # changed line text -> new fingerprint -> reported


def test_cli_write_baseline_then_gate(tmp_path, capsys):
    target = tmp_path / "baseline.json"
    bad = str(FIXTURES / "cor003_bad.py")
    assert main(["--write-baseline", "--baseline", str(target), bad]) == 0
    capsys.readouterr()
    doc = json.loads(target.read_text())
    assert doc["fingerprints"]

    # Baselined findings gate to exit 0; a fresh file still fails.
    assert main(["--baseline", str(target), bad]) == 0
    assert "baselined" in capsys.readouterr().err
    assert main(["--baseline", str(target),
                 str(FIXTURES / "cor002_bad.py")]) == 1
    capsys.readouterr()


def test_repo_baseline_is_empty():
    """The committed baseline asserts the tree is clean — it must never
    silently accumulate grandfathered findings."""
    doc = json.loads(
        (SRC_DIR.parent / ".reprolint-baseline.json").read_text())
    assert doc["fingerprints"] == {}


# -------------------------------------------------------- CLI surface --


def test_cli_explain_prints_rule_card(capsys):
    assert main(["--explain", "TNT001"]) == 0
    out = capsys.readouterr().out
    assert "TNT001" in out
    assert "bad:" in out and "good:" in out


def test_cli_explain_every_registered_rule(capsys):
    assert main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for rule_id in ("CON001", "CON002", "CON003", "TNT001",
                    "API001", "API002"):
        assert rule_id in listed
        assert main(["--explain", rule_id]) == 0
        assert rule_id in capsys.readouterr().out


def test_cli_explain_unknown_rule_exits_2(capsys):
    assert main(["--explain", "NOP999"]) == 2
    assert "no such rule" in capsys.readouterr().err


def test_cli_select_unknown_rule_names_the_problem(capsys):
    assert main(["--select", "NOP001", str(FIXTURES)]) == 2
    err = capsys.readouterr().err
    assert "no such rule" in err and "NOP001" in err


def test_cli_no_project_skips_whole_program_rules(capsys):
    pair_dir = FIXTURES
    bad = str(pair_dir / "con001_bad.py")
    assert main(["--select", "CON001", bad]) == 1
    capsys.readouterr()
    assert main(["--no-project", "--select", "CON001", bad]) == 0


# ----------------------------------- store refactor regression guards --


def test_store_package_is_lint_clean(capsys):
    assert main([str(PACKAGE_DIR / "store")]) == 0
    assert capsys.readouterr().out == ""


def test_sqlite_locked_yields_connection_under_lock(tmp_path):
    from repro.store.sqlite import SQLiteStore

    store = SQLiteStore(tmp_path / "s.db")
    try:
        with store.locked() as conn:
            assert store._lock.locked()
            assert conn.execute("SELECT 1").fetchone() == (1,)
        assert not store._lock.locked()
    finally:
        store.close()


def test_queue_claim_and_nack_still_work(tmp_path):
    """``claim``/``nack`` now borrow the connection via
    ``SQLiteStore.locked()``; the queue semantics must be unchanged."""
    from repro.store.queue import QueueItem, SQLiteWorkQueue
    from repro.store.sqlite import SQLiteStore

    store = SQLiteStore(tmp_path / "q.db")
    try:
        queue = SQLiteWorkQueue(store, "t")
        queue.publish([QueueItem(item_id=0, key="job-1", label="j",
                                 payload=b"x", max_attempts=3)])
        item = queue.claim(worker="w0", lease=60.0)
        assert item is not None and item.key == "job-1"
        assert queue.nack(item.item_id, "Boom", "bang")
        again = queue.claim(worker="w1", lease=60.0)
        assert again is not None and again.key == "job-1"
        queue.ack(again.item_id)
    finally:
        store.close()

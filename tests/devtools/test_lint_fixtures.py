"""Every rule must trip on its known-bad fixture and stay silent on the
known-good one, and the CLI exit codes must hold — including exit 0 over
the real ``src/repro`` tree (the cache-soundness gate CI enforces)."""

import json
from pathlib import Path

import pytest

import repro
from repro.devtools.lint import Checker, main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_DIR = Path(repro.__file__).parent

ALL_RULES = ["DET001", "DET002", "DET003", "DET004",
             "COR001", "COR002", "COR003",
             "CON001", "CON002", "CON003", "TNT001", "API001"]

#: Findings each known-bad fixture must produce (lower bound, so adding
#: detection breadth never breaks the suite).
MIN_BAD_FINDINGS = {
    "DET001": 8,
    "DET002": 6,
    "DET003": 6,
    "DET004": 6,
    "COR001": 4,
    "COR002": 5,
    "COR003": 2,
    "CON001": 3,
    "CON002": 3,
    "CON003": 2,
    "TNT001": 3,
    "API001": 2,
}

#: Fixtures whose full-ruleset run needs a specific virtual location.
#: DET002's good fixture *demonstrates* sanctioned monotonic timing,
#: which DET004 bans inside the simulation substrate — pinning it to a
#: runner path keeps DET004's include gate closed, exactly as it is for
#: the real timing code in ``repro/runner/``.  CON002's good fixture
#: uses the queue module's sanctioned wall-clock lease for the same
#: reason.
VIRTUAL_PATHS = {
    "det002_good.py": "repro/runner/det002_good.py",
    "con002_good.py": "repro/store/queue.py",
}


def lint_fixture(name: str, virtual: str):
    """Lint a fixture under a location-independent virtual path.

    Using a virtual path outside any ``repro`` package directory keeps
    include-scoped rules (COR001, DET004) active no matter where the
    repository is checked out.
    """
    source = (FIXTURES / name).read_text()
    return Checker().check_source(source, path=virtual)


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_bad_fixture_trips_rule(rule_id):
    name = f"{rule_id.lower()}_bad.py"
    findings = lint_fixture(name, f"fixtures/{name}")
    fired = [f for f in findings if f.rule_id == rule_id]
    assert len(fired) >= MIN_BAD_FINDINGS[rule_id], (
        f"{name} must trip {rule_id} at least "
        f"{MIN_BAD_FINDINGS[rule_id]} times, got {len(fired)}: {findings}")


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_good_fixture_is_clean(rule_id):
    name = f"{rule_id.lower()}_good.py"
    virtual = VIRTUAL_PATHS.get(name, f"fixtures/{name}")
    findings = lint_fixture(name, virtual)
    assert findings == [], f"{name} must produce no findings: {findings}"


def test_det002_sanctions_leases_only_in_the_queue_module():
    """The work queue's wall-clock leases (claim + renewal heartbeat)
    are allow-listed by *path*: identical code in any other store
    module — the backends, the retry layer, and especially the
    fault-injection harness, whose schedules must stay pure functions
    of call counts and seeds — still trips DET002, so the store stays
    inside the determinism gate.  The read-only status CLI shares the
    sanction: it compares stored lease deadlines against the wall
    clock for display only."""
    for sanctioned_path in ("repro/store/queue.py",
                            "repro/store/__main__.py"):
        sanctioned = lint_fixture("det002_queue_lease.py", sanctioned_path)
        assert [f for f in sanctioned if f.rule_id == "DET002"] == []
    for virtual in ("repro/store/local.py", "repro/store/sqlite.py",
                    "repro/store/base.py", "repro/store/retry.py",
                    "repro/store/faults.py"):
        findings = lint_fixture("det002_queue_lease.py", virtual)
        fired = [f for f in findings if f.rule_id == "DET002"]
        assert len(fired) == 3, (
            f"all three time.time() reads must trip DET002 under "
            f"{virtual}, got {fired}")


def test_det004_pins_scenario_schedules_to_access_counts():
    """The scenario engine's determinism contract, as a lint gate: a
    lifecycle timeline keyed to host clocks trips DET004 under the
    engine's path, while the access-count-driven shape the real
    ``repro/sim/scenario.py`` uses lints clean under the full ruleset."""
    virtual = "repro/sim/scenario.py"
    dirty = lint_fixture("det004_scenario_clock.py", virtual)
    fired = [f for f in dirty if f.rule_id == "DET004"]
    assert len(fired) >= 4, (
        f"every host-clock read in the scheduler must fire: {dirty}")
    assert lint_fixture("det004_scenario_pure.py", virtual) == []
    # The include gate is the simulation substrate, not the file name:
    # identical clock code outside repro/{cache,core,sim}/ is DET004-free
    # (DET002 still judges its wall-clock reads on its own terms).
    elsewhere = lint_fixture("det004_scenario_clock.py",
                             "repro/runner/scenario_driver.py")
    assert [f for f in elsewhere if f.rule_id == "DET004"] == []


def test_suppressed_fixture_is_clean():
    findings = lint_fixture("suppressed.py", "fixtures/suppressed.py")
    assert findings == []


def test_suppressed_fixture_is_noisy_without_suppressions():
    source = (FIXTURES / "suppressed.py").read_text()
    checker = Checker(respect_suppressions=False)
    findings = checker.check_source(source, path="fixtures/suppressed.py")
    assert {f.rule_id for f in findings} >= {
        "DET001", "DET002", "DET003", "COR002", "COR003"}


def test_project_phase_respects_suppressions():
    findings = lint_fixture("suppressed_project.py",
                            "fixtures/suppressed_project.py")
    assert findings == []


def test_project_phase_is_noisy_without_suppressions():
    source = (FIXTURES / "suppressed_project.py").read_text()
    checker = Checker(respect_suppressions=False)
    findings = checker.check_source(
        source, path="fixtures/suppressed_project.py")
    assert {f.rule_id for f in findings} >= {"CON001", "CON003", "TNT001"}


# ------------------------------------------------- whole-program only --


def _fixture(name):
    return (FIXTURES / name).read_text()


def test_tnt001_catches_cross_module_clock_leak():
    """The acceptance pair: each half is clean per-file, but linting
    them as one project traces ``time.time()`` through ``lease_stamp``'s
    return into the cache-key hash two modules away."""
    source = _fixture("tnt001_clock_source.py")
    sink = _fixture("tnt001_clock_sink.py")
    src_path = "repro/store/queue.py"
    sink_path = "repro/runner/stamped.py"

    assert Checker().check_sources([(src_path, source)]) == []
    assert Checker().check_sources([(sink_path, sink)]) == []

    findings = Checker().check_sources([(src_path, source),
                                        (sink_path, sink)])
    fired = [f for f in findings if f.rule_id == "TNT001"]
    assert fired, f"whole-program pass must flag the leak: {findings}"
    assert all(f.path == sink_path for f in fired)
    assert any("lease_stamp" in f.message for f in fired)


def test_tnt001_guards_trace_id_derivation():
    """Span identity is a reproducibility surface: trace/span IDs must
    be pure hashes of sweep fingerprint + cell key + attempt, or the
    stitcher's duplicate-merging and the canonical projection's
    byte-identity across ``--jobs`` both break.  A wall-clock value
    that reaches ``span_id`` — even laundered through another module's
    sanctioned lease stamp and an f-string — fires the trace-id
    derivation sink."""
    source = _fixture("tnt001_trace_source.py")
    sink = _fixture("tnt001_trace_sink.py")
    src_path = "repro/store/queue.py"
    sink_path = "repro/runner/traced.py"

    # Each half is clean on its own (the source's clock read is the
    # queue module's sanctioned lease stamp).
    assert Checker().check_sources([(src_path, source)]) == []
    assert Checker().check_sources([(sink_path, sink)]) == []

    findings = Checker().check_sources([(src_path, source),
                                        (sink_path, sink)])
    fired = [f for f in findings if f.rule_id == "TNT001"]
    assert fired, f"whole-program pass must flag the leak: {findings}"
    assert all(f.path == sink_path for f in fired)
    assert any("trace-id derivation" in f.message for f in fired)
    assert any("claim_stamp" in f.message for f in fired)


def test_api002_flags_unimported_backend():
    pairs = [("repro/store/rocks.py", _fixture("api002_backend.py")),
             ("repro/store/__init__.py", _fixture("api002_store_init.py"))]
    findings = Checker().check_sources(pairs)
    fired = [f for f in findings if f.rule_id == "API002"]
    assert fired, f"unimported backend must trip API002: {findings}"
    assert any("RocksStore" in f.message for f in fired)


def test_api002_clean_when_backend_imported_and_covered():
    pairs = [("repro/store/rocks.py", _fixture("api002_backend.py")),
             ("repro/store/__init__.py", _fixture("api002_good_init.py"))]
    aux = [("tests/store/test_conformance.py",
            "import pytest\n"
            "from repro.store.base import STORE_BACKENDS\n\n\n"
            "@pytest.mark.parametrize('scheme', sorted(STORE_BACKENDS))\n"
            "def test_roundtrip(scheme):\n    pass\n")]
    findings = Checker().check_sources(pairs, aux_pairs=aux)
    assert [f for f in findings if f.rule_id == "API002"] == []


def test_api002_flags_backend_without_conformance_coverage():
    pairs = [("repro/store/rocks.py", _fixture("api002_backend.py")),
             ("repro/store/__init__.py", _fixture("api002_good_init.py"))]
    aux = [("tests/store/test_misc.py", "def test_nothing():\n    pass\n")]
    findings = Checker().check_sources(pairs, aux_pairs=aux)
    fired = [f for f in findings if f.rule_id == "API002"]
    assert fired
    assert any("conformance" in f.message for f in fired)


# ---------------------------------------------------------------- CLI --


def test_cli_exits_nonzero_on_each_bad_fixture(capsys):
    for rule_id in ALL_RULES:
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        code = main(["--select", rule_id, str(path)])
        out = capsys.readouterr()
        assert code == 1, f"{path.name} must fail the build"
        assert rule_id in out.out


def test_cli_exits_zero_on_good_fixtures(capsys):
    for rule_id in ALL_RULES:
        path = FIXTURES / f"{rule_id.lower()}_good.py"
        assert main(["--select", rule_id, str(path)]) == 0
        assert capsys.readouterr().out == ""


def test_cli_src_tree_is_clean(capsys):
    """The acceptance gate: reprolint over the shipped package exits 0."""
    assert main([str(PACKAGE_DIR)]) == 0
    assert capsys.readouterr().out == ""


def test_cli_json_format(capsys):
    path = FIXTURES / "cor003_bad.py"
    assert main(["--format", "json", "--select", "COR003", str(path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and payload
    assert all(item["rule"] == "COR003" for item in payload)
    assert {"path", "line", "col", "rule", "message"} <= set(payload[0])


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out


def test_cli_usage_errors(tmp_path, capsys):
    assert main([]) == 2  # no paths
    assert main(["--select", "NOPE01", str(FIXTURES)]) == 2
    assert main([str(tmp_path / "missing.py")]) == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    err = capsys.readouterr().err
    assert "syntax error" in err


def test_cli_ignore_drops_rule(capsys):
    path = FIXTURES / "cor003_bad.py"
    assert main(["--ignore", "COR003", str(path)]) == 0
    capsys.readouterr()


def test_cli_directory_walk_hits_all_bad_fixtures(capsys):
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "COR002", "COR003",
                    "CON001", "CON003", "TNT001"):
        assert rule_id in out

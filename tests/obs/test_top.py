"""The live aggregator: alert rules, fleet sampling, CLI exit codes."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.__main__ import main as obs_main
from repro.obs.schema import header_line
from repro.obs.top import (
    KNOWN_METRICS,
    AlertRule,
    render_dashboard,
    sample_fleet,
    top,
)
from repro.obs.trace import span_id, trace_id_for
from repro.store import open_store
from repro.store.queue import QueueItem


class TestAlertRule:
    def test_parses_each_operator(self):
        for text in ("failed > 0", "unfinished<=3", " steals >= 1 ",
                     "done == 2", "pending != 0", "lease_tte_min < 0.5"):
            rule = AlertRule.parse(text)
            assert rule.metric in KNOWN_METRICS

    def test_fires_only_when_the_comparison_holds(self):
        rule = AlertRule.parse("failed > 0")
        assert rule.fired({"failed": 0}) is None
        message = rule.fired({"failed": 2})
        assert message is not None and "ALERT" in message
        assert "value: 2" in message

    def test_absent_metric_skips_rather_than_fires(self):
        rule = AlertRule.parse("lease_tte_min < 1")
        assert rule.fired({"lease_tte_min": None}) is None
        assert rule.fired({}) is None

    def test_malformed_expression_is_rejected(self):
        with pytest.raises(ConfigurationError, match="alert rule"):
            AlertRule.parse("failed >")
        with pytest.raises(ConfigurationError, match="alert rule"):
            AlertRule.parse("failed ~ 2")

    def test_unknown_metric_lists_the_known_ones(self):
        with pytest.raises(ConfigurationError) as err:
            AlertRule.parse("latency_p99 > 5")
        assert "latency_p99" in str(err.value)
        assert "unfinished" in str(err.value)  # the menu is in the error


def seeded_store(tmp_path, *, queues=("fig3",)):
    """A sqlite store with 3 published items per queue, one claimed."""
    url = f"sqlite:{tmp_path / 'results.db'}"
    store = open_store(url)
    try:
        for name in queues:
            queue = store.make_queue(name)
            queue.publish([QueueItem(
                item_id=i, key=f"k{i}", label=f"{name}[{i}]",
                payload=b"", max_attempts=3) for i in range(3)])
            queue.claim("w1", lease=30.0)
    finally:
        store.close()
    return url


class TestSampleQueue:
    def test_counts_and_lease_metrics_from_a_live_queue(self, tmp_path):
        url = seeded_store(tmp_path)
        metrics, lines = sample_fleet(store_url=url)
        assert metrics["pending"] == 2
        assert metrics["claimed"] == 1
        assert metrics["unfinished"] == 3
        assert metrics["workers"] == 1
        assert metrics["steals"] == 0
        # max_attempts=3 -> loss budget 2, nothing lost yet.
        assert metrics["loss_budget_remaining"] == 2
        assert metrics["lease_tte_min"] == pytest.approx(30.0, abs=5.0)
        text = "\n".join(lines)
        assert "fig3" in text and "w1" in text

    def test_single_queue_is_auto_detected(self, tmp_path):
        url = seeded_store(tmp_path)
        auto, _ = sample_fleet(store_url=url)
        named, _ = sample_fleet(store_url=url, queue_name="fig3")
        # lease_tte_min decays between the two samples; drop it.
        auto.pop("lease_tte_min"), named.pop("lease_tte_min")
        assert auto == named

    def test_several_queues_demand_an_explicit_name(self, tmp_path):
        url = seeded_store(tmp_path, queues=("fig3", "fig7"))
        with pytest.raises(ConfigurationError, match="--queue"):
            sample_fleet(store_url=url)
        metrics, _ = sample_fleet(store_url=url, queue_name="fig7")
        assert metrics["pending"] == 2

    def test_naming_a_missing_queue_is_an_error(self, tmp_path):
        url = seeded_store(tmp_path)
        with pytest.raises(ConfigurationError, match="fig3"):
            sample_fleet(store_url=url, queue_name="nope")

    def test_store_without_queues_reports_rather_than_errors(self, tmp_path):
        url = f"sqlite:{tmp_path / 'empty.db'}"
        open_store(url).close()
        metrics, lines = sample_fleet(store_url=url)
        assert metrics["pending"] is None
        assert any("no work queues" in line for line in lines)


def write_trace_tail(run_dir):
    tid = trace_id_for(["k0", "k1"])
    rows = []
    for i, key in enumerate(["k0", "k1"]):
        for kind, start in (("claim", i), ("execute", i + 0.1),
                            ("ack", i + 2.0)):
            rows.append({
                "trace": tid,
                "span": span_id(tid, kind, key, 1),
                "parent": None, "kind": kind, "name": f"{kind}:{key}",
                "key": key, "attempt": 1, "status": "ok",
                "events": ([{"name": "steal", "det": False}]
                           if kind == "claim" and i == 0 else []),
                "wall": {"start": start, "end": start + 1.0,
                         "worker": "w1"},
            })
    traces = run_dir / "traces"
    traces.mkdir(parents=True)
    (traces / "w1.jsonl").write_text(
        "\n".join([header_line("trace")]
                  + [json.dumps(r) for r in rows]) + "\n")


class TestSampleTraces:
    def test_span_counts_events_and_throughput(self, tmp_path):
        write_trace_tail(tmp_path)
        metrics, lines = sample_fleet(run_dir=tmp_path)
        assert metrics["claims"] == 2
        assert metrics["executes"] == 2
        assert metrics["acks"] == 2
        assert metrics["nacks"] == 0
        # 2 acks over the 0.0..4.0 observed wall window.
        assert metrics["cells_per_sec"] == pytest.approx(0.5)
        # Steals observed in the trace tail surface on the event line.
        assert any("steals=1" in line for line in lines)

    def test_run_dir_without_traces_is_quietly_empty(self, tmp_path):
        metrics, _ = sample_fleet(run_dir=tmp_path)
        assert metrics["claims"] is None


class TestTopLoop:
    def test_returns_zero_when_no_rule_ever_fires(self, tmp_path):
        url = seeded_store(tmp_path)
        stream = io.StringIO()
        code = top(store_url=url, rules=[AlertRule.parse("failed > 0")],
                   once=True, stream=stream)
        assert code == 0
        assert "ALERT" not in stream.getvalue()

    def test_fired_rule_latches_exit_one(self, tmp_path):
        url = seeded_store(tmp_path)
        stream = io.StringIO()
        code = top(store_url=url,
                   rules=[AlertRule.parse("unfinished > 0")],
                   once=True, stream=stream)
        assert code == 1
        assert "ALERT unfinished > 0" in stream.getvalue()

    def test_max_samples_bounds_the_loop(self, tmp_path):
        url = seeded_store(tmp_path)
        stream = io.StringIO()
        code = top(store_url=url, rules=[], interval=0.01, max_samples=2,
                   stream=stream)
        assert code == 0

    def test_non_positive_interval_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="interval"):
            top(store_url=seeded_store(tmp_path), interval=0.0)

    def test_render_dashboard_clear_prefixes_ansi(self):
        plain = render_dashboard(["line"], [])
        cleared = render_dashboard(["line"], [], clear=True)
        assert not plain.startswith("\x1b")
        assert cleared.startswith("\x1b[2J\x1b[H")


class TestCli:
    def test_exit_codes_clean_fired_and_config_error(self, tmp_path,
                                                     capsys):
        url = seeded_store(tmp_path)
        assert obs_main(["top", "--store", url, "--once",
                         "--rule", "failed > 0"]) == 0
        assert obs_main(["top", "--store", url, "--once",
                         "--rule", "pending > 0"]) == 1
        assert "ALERT" in capsys.readouterr().out
        assert obs_main(["top", "--store", url, "--once",
                         "--rule", "bogus > 0"]) == 2
        assert "error:" in capsys.readouterr().err

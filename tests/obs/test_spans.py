"""Runner spans: the full cell lifecycle as observed through run_cells."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import RunTelemetry
from repro.runner import Cell, ResultCache, run_cells

from .helpers import broken_cell, flaky_cell, sim_cell


def _cells(n=3):
    return [Cell("obs-e2e", (i,), sim_cell, (64, 200, i)) for i in range(n)]


def test_span_requires_begin():
    with pytest.raises(ConfigurationError):
        RunTelemetry().completed(0, 0.1)


def test_fresh_run_spans():
    telemetry = RunTelemetry(experiment="obs-e2e")
    run_cells(_cells(), jobs=1, telemetry=telemetry)
    rows = telemetry.rows()
    assert [r["index"] for r in rows] == [0, 1, 2]
    for row in rows:
        assert row["status"] == "ok"
        assert row["attempts"] == 1
        assert row["retries"] == 0
        assert row["cache_hit"] is False
        assert row["errors"] == []
        assert row["wall"]["duration_s"] is not None
        # Wall-clock values live under "wall" and nowhere else.
        assert set(row) == {"index", "cell", "experiment", "key", "status",
                            "attempts", "retries", "losses", "cache_hit",
                            "errors", "wall"}
    assert telemetry.counts() == {"total": 3, "completed": 3, "cached": 0,
                                  "failed": 0, "retries": 0, "losses": 0}
    assert telemetry.metrics.counter(
        "runner.cells.completed", ("experiment",)).value(
            experiment="obs-e2e") == 3


def test_cached_run_spans(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_cells(_cells(), jobs=1, store=cache)
    telemetry = RunTelemetry()
    run_cells(_cells(), jobs=1, store=cache, telemetry=telemetry)
    assert all(r["status"] == "cached" and r["cache_hit"]
               for r in telemetry.rows())
    assert telemetry.counts()["cached"] == 3


def test_retried_cell_span(tmp_path):
    telemetry = RunTelemetry()
    cells = [Cell("obs-e2e", ("flaky",), flaky_cell,
                  (str(tmp_path), "s", 42))]
    results = run_cells(cells, jobs=1, retries=2, telemetry=telemetry)
    assert results == [42]
    (row,) = telemetry.rows()
    assert row["status"] == "ok"
    assert row["attempts"] == 2
    assert row["retries"] == 1
    assert row["errors"] == ["ValueError"]
    assert telemetry.metrics.counter(
        "runner.retries", ("experiment", "error")).value(
            experiment="obs-e2e", error="ValueError") == 1


def test_failed_cell_span_keep_going():
    telemetry = RunTelemetry()
    cells = _cells(2) + [Cell("obs-e2e", ("bad",), broken_cell, ("boom",))]
    results = run_cells(cells, jobs=1, retries=1, keep_going=True,
                        telemetry=telemetry)
    assert results[:2] == [sim_cell(64, 200, 0), sim_cell(64, 200, 1)]
    bad = telemetry.rows()[2]
    assert bad["status"] == "failed"
    assert bad["attempts"] == 2
    assert bad["errors"] == ["ValueError", "ValueError"]
    counts = telemetry.counts()
    assert counts["failed"] == 1 and counts["completed"] == 2


def test_pool_run_matches_inline_spans():
    """Spans minus wall must be identical at jobs=1 and jobs=2."""
    stripped = []
    for jobs in (1, 2):
        telemetry = RunTelemetry()
        run_cells(_cells(4), jobs=jobs, telemetry=telemetry)
        rows = telemetry.rows()
        for row in rows:
            row.pop("wall")
        stripped.append(rows)
    assert stripped[0] == stripped[1]


def test_queue_stats_gauges():
    """The fleet-health counters: renewals (live-but-slow workers) and
    steals (dead workers) land as per-queue gauges."""
    telemetry = RunTelemetry()
    telemetry.queue_stats("fig3", renewals=14, steals=0)
    telemetry.queue_stats("fig4", renewals=0, steals=2)
    renewals = telemetry.metrics.gauge("queue.renewals", ("queue",))
    steals = telemetry.metrics.gauge("queue.steals", ("queue",))
    assert renewals.value(queue="fig3") == 14
    assert steals.value(queue="fig3") == 0
    assert renewals.value(queue="fig4") == 0
    assert steals.value(queue="fig4") == 2


def test_write_jsonl_in_cell_order(tmp_path):
    telemetry = RunTelemetry()
    run_cells(_cells(), jobs=2, telemetry=telemetry)
    path = telemetry.write_jsonl(tmp_path / "spans.jsonl")
    lines = path.read_text().splitlines()
    assert json.loads(lines[0]) == {"artifact": "spans",
                                    "schema_version": 1}
    rows = [json.loads(line) for line in lines[1:]]
    assert [r["index"] for r in rows] == [0, 1, 2]

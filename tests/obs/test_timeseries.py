"""Time-series recorder: inline/dispatch equivalence and zero-cost-off.

The compiled access kernel recognizes the exact
:class:`TimeSeriesRecorder` type and inlines its window counters; any
subclass goes through the generic event-dispatch path instead.  Both
paths must produce byte-identical rows, and with no recorder subscribed
the kernel must contain no trace of the telemetry code at all.
"""

import json
import random

import pytest

from repro.cache.arrays import SetAssociativeArray, ZCacheArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.futility_scaling import (
    FeedbackFutilityScalingScheme,
    FutilityScalingScheme,
)
from repro.errors import ConfigurationError
from repro.obs import TimeSeriesRecorder

LINES = 512
PARTS = 4


class DispatchRecorder(TimeSeriesRecorder):
    """Forced onto the generic dispatch path (not the exact type)."""


def _build(feedback=True):
    if feedback:
        scheme = FeedbackFutilityScalingScheme()
        ranking = CoarseTimestampLRURanking()
    else:
        scheme = FutilityScalingScheme()
        ranking = LRURanking()
    return PartitionedCache(SetAssociativeArray(LINES, 8), ranking, scheme,
                            PARTS)


def _drive(cache, n=6_000, seed=7):
    rng = random.Random(seed)
    access = cache.access
    for _ in range(n):
        part = rng.randrange(PARTS)
        access(part * 10**8 + rng.randrange(LINES), part)


def test_interval_must_be_positive():
    with pytest.raises(ConfigurationError):
        TimeSeriesRecorder(0)


def test_sampling_before_attach_rejected():
    rec = TimeSeriesRecorder(4)
    with pytest.raises(ConfigurationError):
        rec._sample()


def test_kernel_has_no_obs_code_when_off():
    cache = _build()
    source = cache.access.__kernel_source__
    assert "ts_" not in source
    _drive(cache, 500)
    assert "ts_" not in cache.access.__kernel_source__


def test_inline_and_dispatch_rows_are_identical():
    rows = {}
    for cls in (TimeSeriesRecorder, DispatchRecorder):
        cache = _build()
        rec = cls(interval=128).attach(cache)
        cache.events.subscribe(rec)
        source = cache.access.__kernel_source__
        if cls is TimeSeriesRecorder:
            assert "ts_acc" in source, "exact type must be inlined"
        else:
            assert "ts_" not in source, "subclass must be dispatched"
        _drive(cache)
        cache.events.unsubscribe(rec)
        rows[cls.__name__] = rec.rows()
    inline, dispatch = rows["TimeSeriesRecorder"], rows["DispatchRecorder"]
    assert inline, "no samples recorded"
    assert json.dumps(inline, sort_keys=True) == \
        json.dumps(dispatch, sort_keys=True)


def test_row_shape_and_window_accounting():
    cache = _build()
    rec = TimeSeriesRecorder(interval=256).attach(cache)
    with cache.events.subscribed(rec):
        _drive(cache, 1024)
    assert len(rec.rows()) == 4 * PARTS  # 1024/256 samples x partitions
    for row in rec.rows():
        assert set(row) == {"access", "part", "occupancy", "target",
                            "alpha", "miss_rate", "insertions", "evictions"}
        assert row["access"] % 256 == 0
    # Window counters are zeroed between samples: total insertions over
    # all windows equals total cache insertions at sample boundaries.
    total_ins = sum(row["insertions"] for row in rec.rows())
    assert 0 < total_ins <= sum(cache.stats.insertions)


def test_alpha_reported_for_feedback_fs_only():
    feedback = _build(feedback=True)
    rec = TimeSeriesRecorder(interval=512).attach(feedback)
    with feedback.events.subscribed(rec):
        _drive(feedback, 2048)
    alphas = rec.series("alpha", 0)
    assert alphas and all(isinstance(a, float) for a in alphas)

    from repro.core.schemes.partitioning_first import PartitioningFirstScheme
    pf = PartitionedCache(SetAssociativeArray(LINES, 8), LRURanking(),
                          PartitioningFirstScheme(), PARTS)
    rec_pf = TimeSeriesRecorder(interval=512).attach(pf)
    with pf.events.subscribed(rec_pf):
        _drive(pf, 2048)
    assert rec_pf.series("alpha", 0)
    assert all(a is None for a in rec_pf.series("alpha", 0))


def test_miss_rate_none_for_idle_partition():
    cache = _build()
    rec = TimeSeriesRecorder(interval=64).attach(cache)
    with cache.events.subscribed(rec):
        for i in range(256):  # partition 3 never accessed
            cache.access(i % LINES, i % 2)
    idle = rec.series("miss_rate", 3)
    assert idle and all(m is None for m in idle)
    busy = rec.series("miss_rate", 0)
    assert all(m is not None and 0.0 <= m <= 1.0 for m in busy)


def test_reset_preserves_kernel_bindings():
    """reset() must zero the window lists *in place* — the compiled
    kernel holds direct references to them."""
    cache = _build()
    rec = TimeSeriesRecorder(interval=64).attach(cache)
    with cache.events.subscribed(rec):
        _drive(cache, 512)
        buffers = (rec._win_acc, rec._win_miss, rec._win_ins, rec._win_evi)
        rec.reset()
        assert (rec._win_acc, rec._win_miss, rec._win_ins,
                rec._win_evi) == tuple([0] * PARTS for _ in range(4))
        for before, after in zip(buffers, (rec._win_acc, rec._win_miss,
                                           rec._win_ins, rec._win_evi)):
            assert before is after
        _drive(cache, 512)
    assert rec.rows(), "recorder stopped sampling after reset()"


def test_relocating_array_rows_identical_across_paths():
    """zcache relocation walks exercise insert/evict inlining too."""
    rows = []
    for cls in (TimeSeriesRecorder, DispatchRecorder):
        cache = PartitionedCache(ZCacheArray(256, 4, 8),
                                 CoarseTimestampLRURanking(),
                                 FeedbackFutilityScalingScheme(), 2)
        rec = cls(interval=128).attach(cache)
        rng = random.Random(11)
        with cache.events.subscribed(rec):
            for _ in range(4_000):
                part = rng.randrange(2)
                cache.access(part * 10**8 + rng.randrange(256), part)
        rows.append(rec.rows())
    assert rows[0] == rows[1]


def test_write_jsonl_byte_stable(tmp_path):
    cache = _build()
    rec = TimeSeriesRecorder(interval=128).attach(cache)
    with cache.events.subscribed(rec):
        _drive(cache, 1024)
    a = rec.write_jsonl(tmp_path / "a.jsonl").read_bytes()
    b = rec.write_jsonl(tmp_path / "b.jsonl").read_bytes()
    assert a == b
    # One schema header row, then one line per sampled row.
    assert len(a.splitlines()) == len(rec.rows()) + 1

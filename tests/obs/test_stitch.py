"""The stitcher: merging, completeness invariants, canonical projection,
critical-path attribution — all on synthetic span rows."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.schema import header_line
from repro.obs.stitch import (
    canonical,
    completeness,
    critical_path,
    load_trace_rows,
    render_critical_path,
    render_tree,
    stitch,
)
from repro.obs.trace import span_id, trace_id_for

TID = trace_id_for(["k0", "k1"])


def row(kind, *, key="k0", attempt=0, parent=None, status="ok",
        events=(), start=0.0, end=1.0, worker="w1", trace=TID, name=None):
    return {
        "trace": trace,
        "span": span_id(trace, kind, key, attempt),
        "parent": parent,
        "kind": kind,
        "name": name or f"{kind}:{key}",
        "key": key,
        "attempt": attempt,
        "status": status,
        "events": list(events),
        "wall": {"start": start, "end": end, "worker": worker},
    }


def queue_cell_rows(key="k0", *, retried=False, cell_status="ok",
                    offset=0.0):
    """A complete queue-mode cell subtree, optionally with one retry."""
    sweep = span_id(TID, "sweep")
    cell = row("cell", key=key, parent=sweep, status=cell_status,
               start=offset, end=offset + 10.0, worker="coord")
    rows = [cell]
    final = 2 if retried else 1
    for attempt in range(1, final + 1):
        claim = row("claim", key=key, attempt=attempt, parent=cell["span"],
                    start=offset + attempt, end=offset + attempt + 0.1)
        execute = row("execute", key=key, attempt=attempt,
                      parent=claim["span"], start=offset + attempt + 0.1,
                      end=offset + attempt + 2.0,
                      status="error" if attempt < final else "ok")
        rows.extend([claim, execute])
        if attempt < final:
            rows.append(row("nack", key=key, attempt=attempt,
                            parent=claim["span"], status="error",
                            events=[{"name": "error", "det": True,
                                     "error": "ValueError"},
                                    {"name": "retry_scheduled",
                                     "det": True}],
                            start=offset + attempt + 2.0,
                            end=offset + attempt + 2.1))
    terminal = "ack" if cell_status == "ok" else "nack"
    rows.append(row(terminal, key=key, attempt=final,
                    parent=span_id(TID, "claim", key, final),
                    status="ok" if terminal == "ack" else "error",
                    start=offset + final + 2.0, end=offset + final + 2.5))
    return rows


def full_tree_rows():
    sweep = row("sweep", key="", name="fig3", start=0.0, end=20.0,
                worker="coord")
    return ([sweep] + queue_cell_rows("k0", retried=True)
            + queue_cell_rows("k1"))


class TestStitch:
    def test_builds_one_rooted_tree(self):
        tree = stitch(full_tree_rows())
        assert tree["trace"] == TID
        assert tree["root"] == span_id(TID, "sweep")
        cells = tree["children"][tree["root"]]
        assert [tree["spans"][c]["key"] for c in cells] == ["k0", "k1"]

    def test_duplicate_spans_merge_instead_of_forking(self):
        """At-least-once delivery: the same execute observed by two
        workers collapses into one node — events deduped, the definite
        status wins, wall window unioned, workers joined."""
        a = row("execute", attempt=1, parent="p", start=1.0, end=2.0,
                worker="w1", events=[{"name": "fault", "det": True}])
        b = row("execute", attempt=1, parent="p", start=1.5, end=3.0,
                worker="w2", status="error",
                events=[{"name": "fault", "det": True},
                        {"name": "steal", "det": False}])
        tree = stitch([a, b])
        (merged,) = tree["spans"].values()
        assert merged["status"] == "error"
        assert merged["events"] == [{"name": "fault", "det": True},
                                    {"name": "steal", "det": False}]
        assert merged["wall"] == {"start": 1.0, "end": 3.0,
                                  "worker": "w1+w2"}

    def test_rows_from_several_traces_need_an_explicit_id(self):
        other = trace_id_for(["other"])
        rows = [row("sweep", key=""), row("sweep", key="", trace=other)]
        with pytest.raises(ConfigurationError, match="pass trace_id"):
            stitch(rows)
        tree = stitch(rows, trace_id=other)
        assert tree["trace"] == other
        assert len(tree["spans"]) == 1


class TestCompleteness:
    def test_complete_tree_has_no_problems(self):
        assert completeness(stitch(full_tree_rows())) == []

    def test_missing_root_sweep(self):
        problems = completeness(stitch(queue_cell_rows()))
        assert any("exactly one root sweep" in p for p in problems)

    def test_unresolved_parent(self):
        rows = full_tree_rows()
        rows.append(row("claim", key="k1", attempt=9, parent="f" * 16))
        problems = completeness(stitch(rows))
        assert any("unresolved parent" in p for p in problems)

    def test_claim_attempt_gap(self):
        rows = [r for r in full_tree_rows()
                if not (r["key"] == "k0" and r["attempt"] == 1
                        and r["kind"] in ("claim", "execute", "nack"))]
        problems = completeness(stitch(rows))
        assert any("not 1..K" in p for p in problems)

    def test_claim_without_execute(self):
        rows = [r for r in full_tree_rows()
                if not (r["kind"] == "execute" and r["key"] == "k1")]
        problems = completeness(stitch(rows))
        assert any("has no execute span" in p for p in problems)

    def test_retried_attempt_without_nack(self):
        rows = [r for r in full_tree_rows() if r["kind"] != "nack"]
        problems = completeness(stitch(rows))
        assert any("retried but has no nack" in p for p in problems)

    def test_more_than_one_ack(self):
        rows = full_tree_rows()
        stray = row("ack", key="k0", attempt=1,
                    parent=span_id(TID, "claim", "k0", 1))
        rows.append(stray)
        problems = completeness(stitch(rows))
        assert any("2 ack spans" in p for p in problems)

    def test_missing_terminal(self):
        rows = [r for r in full_tree_rows()
                if not (r["kind"] == "ack" and r["key"] == "k1")]
        problems = completeness(stitch(rows))
        assert any("no terminal span" in p for p in problems)

    def test_ok_cell_with_a_non_ack_terminal(self):
        rows = [r for r in full_tree_rows() if r["key"] != "k0"]
        nack = row("nack", key="k1", attempt=1,
                   parent=span_id(TID, "claim", "k1", 1), status="error")
        rows = [r for r in rows if r["kind"] != "ack"] + [nack]
        problems = completeness(stitch(rows))
        assert any("terminal is nack" in p for p in problems)

    def test_cached_cell_must_have_no_children(self):
        sweep = row("sweep", key="", start=0.0, end=1.0)
        cell = row("cell", parent=sweep["span"], status="cached")
        claim = row("claim", attempt=1, parent=cell["span"])
        problems = completeness(stitch([sweep, cell, claim]))
        assert any("cached cell has child spans" in p for p in problems)

    def test_pool_cell_needs_only_an_execute(self):
        sweep = row("sweep", key="", start=0.0, end=1.0)
        cell = row("cell", parent=sweep["span"])
        execute = row("execute", attempt=1, parent=cell["span"])
        assert completeness(stitch([sweep, cell, execute])) == []
        problems = completeness(stitch([sweep, cell]))
        assert any("no execute span" in p for p in problems)


class TestCanonical:
    def test_strips_wall_and_schedule_events(self):
        text = canonical(stitch(full_tree_rows()))
        assert text.endswith("\n")
        for line in text.splitlines():
            parsed = json.loads(line)
            assert "wall" not in parsed
            assert all(e["det"] for e in parsed["events"])
        assert "retry_scheduled" in text  # det=True facts survive

    def test_byte_identical_across_row_order_and_schedule_noise(self):
        rows = full_tree_rows()
        noisy = []
        for r in reversed(rows):
            r = dict(r)
            r["wall"] = {"start": r["wall"]["start"] + 7.0,
                         "end": r["wall"]["end"] + 9.0, "worker": "other"}
            r["events"] = list(r["events"]) + [
                {"name": "lease_renew", "det": False}]
            noisy.append(r)
        assert canonical(stitch(noisy)) == canonical(stitch(rows))


class TestCriticalPath:
    def test_buckets_attribute_the_cell_window(self):
        sweep = row("sweep", key="", name="s", start=0.0, end=10.0)
        cell = row("cell", parent=sweep["span"], start=0.0, end=10.0)
        claim1 = row("claim", attempt=1, parent=cell["span"],
                     start=0.0, end=1.0)
        exec1 = row("execute", attempt=1, parent=claim1["span"],
                    start=1.0, end=3.0, status="error")
        nack1 = row("nack", attempt=1, parent=claim1["span"],
                    start=3.0, end=3.5, status="error")
        claim2 = row("claim", attempt=2, parent=cell["span"],
                     start=4.0, end=4.2)
        exec2 = row("execute", attempt=2, parent=claim2["span"],
                    start=4.2, end=8.2)
        ack = row("ack", attempt=2, parent=claim2["span"],
                  start=8.2, end=8.7)
        tree = stitch([sweep, cell, claim1, exec1, nack1, claim2, exec2,
                       ack])
        report = critical_path(tree)
        assert report["cells"] == 1
        assert report["sweep_wall_s"] == pytest.approx(10.0)
        breakdown = report["critical_cell"]["breakdown"]
        assert breakdown["execute"] == pytest.approx(4.0)
        assert breakdown["retry"] == pytest.approx(2.5)
        assert breakdown["store"] == pytest.approx(1.7)
        assert breakdown["queue_wait"] == pytest.approx(
            10.0 - 4.0 - 2.5 - 1.7)
        assert report["totals"] == breakdown

    def test_cached_cells_are_excluded(self):
        sweep = row("sweep", key="", start=0.0, end=1.0)
        cell = row("cell", parent=sweep["span"], status="cached")
        report = critical_path(stitch([sweep, cell]))
        assert report["cells"] == 0
        assert report["critical_cell"] is None

    def test_renderers_mention_the_load_bearing_facts(self):
        tree = stitch(full_tree_rows())
        path_text = render_critical_path(critical_path(tree))
        assert "critical cell" in path_text
        assert "queue_wait" in path_text
        tree_text = render_tree(tree)
        assert "cell cell:k0" in tree_text
        assert "[retry_scheduled]" in tree_text
        capped = render_tree(tree, max_cells=1)
        assert "(+1 more cells)" in capped


class TestLoadTraceRows:
    def test_loads_from_run_dir_traces_dir_and_file(self, tmp_path):
        traces = tmp_path / "run" / "traces"
        traces.mkdir(parents=True)
        path = traces / "w1.jsonl"
        lines = [header_line("trace")] + [
            json.dumps(r) for r in full_tree_rows()]
        path.write_text("\n".join(lines) + "\n")
        n = len(full_tree_rows())
        assert len(load_trace_rows([tmp_path / "run"])) == n
        assert len(load_trace_rows([traces])) == n
        assert len(load_trace_rows([path])) == n

    def test_missing_source_and_traceless_dir_are_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_trace_rows([tmp_path / "nope"])
        (tmp_path / "empty").mkdir()
        with pytest.raises(ConfigurationError, match="--trace"):
            load_trace_rows([tmp_path / "empty"])

    def test_malformed_row_is_reported_with_its_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(row("sweep", key=""))
        path.write_text(header_line("trace") + "\n" + good + "\n"
                        + '{"trace": "t", "span": ""}\n')
        with pytest.raises(ConfigurationError,
                           match=r"bad\.jsonl:\d+: malformed trace row"):
            load_trace_rows([path])

"""The lifecycle/*.jsonl artifact: writer, schema, manifest agreement."""

import json

import pytest

from repro import api
from repro.obs import TelemetrySession, validate_run_dir, write_lifecycle
from repro.obs.runtime import set_cell
from repro.obs.schema import load_jsonl, validate_lifecycle_row

GOOD_ROW = {"seq": 1, "event": "create", "part": 2,
            "targets": [64, 64, 0], "access": 500}


def _cache(parts=2):
    return api.build_cache(array=api.build_array("set-assoc", 128, ways=8),
                           ranking="lru", scheme="fs",
                           num_partitions=parts)


# -- row schema ---------------------------------------------------------------

def test_good_rows_validate():
    assert validate_lifecycle_row(GOOD_ROW) == []
    # The access stamp is optional: raw cache logs lack it.
    bare = {k: v for k, v in GOOD_ROW.items() if k != "access"}
    assert validate_lifecycle_row(bare) == []
    retarget = dict(GOOD_ROW, event="retarget", part=-1)
    assert validate_lifecycle_row(retarget) == []


@pytest.mark.parametrize("mutate,fragment", [
    (lambda r: r.pop("seq"), "missing key 'seq'"),
    (lambda r: r.update(seq=-1), "'seq' must be an int >= 0"),
    (lambda r: r.update(event="destroy"), "'event' must be one of"),
    (lambda r: r.update(part=-2), "'part' must be an int >= -1"),
    (lambda r: r.update(targets=[]), "non-empty list"),
    (lambda r: r.update(targets=[1, -1]), "ints >= 0"),
    (lambda r: r.update(access=-5), "'access' must be an int >= 0"),
    (lambda r: r.update(extra=1), "unexpected key 'extra'"),
])
def test_bad_rows_rejected(mutate, fragment):
    row = dict(GOOD_ROW)
    mutate(row)
    problems = validate_lifecycle_row(row)
    assert any(fragment in p for p in problems), problems


# -- the writer ---------------------------------------------------------------

def test_writer_is_a_noop_without_telemetry():
    cache = _cache()
    cache.create_partition()
    assert write_lifecycle(cache) is None


def test_writer_skips_retarget_only_logs(tmp_path):
    """Steady-state runs (set_targets only) leave no lifecycle files, so
    their telemetry directories match pre-control-plane ones."""
    with TelemetrySession(tmp_path / "run", experiment="lc"):
        cache = _cache()
        cache.set_targets([100, 28])
        assert write_lifecycle(cache) is None
    assert not (tmp_path / "run" / "lifecycle").exists()
    manifest = json.loads(
        (tmp_path / "run" / "manifest.json").read_text())
    assert "lifecycle" not in manifest["artifacts"]


def test_writer_round_trips_and_validates(tmp_path):
    with TelemetrySession(tmp_path / "run", experiment="lc") as session:
        set_cell("lc[churn]")
        cache = _cache()
        part = cache.create_partition()
        cache.set_targets([64, 32, 32])
        cache.retire_partition(part)
        out = write_lifecycle(cache)
        assert out is not None
        assert out.name == "lc_churn_-000.jsonl"
    first = json.loads(out.read_text().splitlines()[0])
    assert first == {"artifact": "lifecycle", "schema_version": 1}
    rows = load_jsonl(out)
    assert [r["event"] for r in rows] == ["create", "retarget", "retire"]
    assert all(validate_lifecycle_row(r) == [] for r in rows)
    manifest = json.loads(session.dir.joinpath("manifest.json").read_text())
    assert manifest["artifacts"]["lifecycle"] == ["lc_churn_-000.jsonl"]
    assert validate_run_dir(session.dir) == []


def test_run_dir_flags_unlisted_lifecycle_files(tmp_path):
    with TelemetrySession(tmp_path / "run", experiment="lc") as session:
        pass
    extra = session.dir / "lifecycle"
    extra.mkdir()
    (extra / "stray.jsonl").write_text(json.dumps(GOOD_ROW) + "\n")
    problems = validate_run_dir(session.dir)
    assert any("artifacts.lifecycle" in p for p in problems), problems


def test_scenario_run_emits_the_artifact(tmp_path):
    from repro.sim.scenario import (ScenarioScript, Tenant, TenantDeparture,
                                    WorkloadSpec, run_scenario)

    script = ScenarioScript(
        initial=(Tenant("a", WorkloadSpec("loop", 64)),
                 Tenant("b", WorkloadSpec("random", 64, seed=2))),
        events=(TenantDeparture(at=300, name="b"),),
        total_accesses=600)
    with TelemetrySession(tmp_path / "run", experiment="scn") as session:
        set_cell("scn[churn]")
        run_scenario(script, lambda n: _cache(n), baselines=False)
    files = sorted((session.dir / "lifecycle").glob("*.jsonl"))
    assert len(files) == 1
    rows = load_jsonl(files[0])
    assert "retire" in {r["event"] for r in rows}
    # Scenario-stamped rows carry the global access index.
    assert all("access" in r for r in rows)
    assert validate_run_dir(session.dir) == []

"""Traced chaos runs: faults, retries, and steals must leave complete,
deterministic traces — and never perturb the experiment's output.

The acceptance bar for the tracing layer, asserted end to end through
the experiments CLI:

* a traced queue fleet under fault injection prints exactly the bytes
  a fault-free untraced ``--jobs 1`` run prints (observation is pure);
* the stitched span tree passes every completeness invariant — the
  claim ladder is 1..K, each claim has its execute, each retried
  attempt has its nack, and exactly one terminal closes the cell;
* the canonical projection is byte-identical across worker counts for
  raise-based fault plans (retries are deterministic; schedules are
  not, and they must not leak into the projection).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import main
from repro.obs.schema import validate_run_dir
from repro.obs.stitch import canonical, completeness, load_trace_rows, stitch
from repro.runner.faults import FAULTS_ENV
from repro.store import open_store
from repro.store.faults import STORE_FAULTS_ENV

#: One fig3 cell raises on its first attempt and succeeds on retry.
RETRY_PLAN = json.dumps({"faults": [
    {"cell": "fig3[0.6]", "kind": "raise", "attempts": [1]}]})

#: One fig3 cell sleeps well past the 0.4 s lease used below.
SLOW_PLAN = json.dumps({"faults": [
    {"cell": "fig3[0.6]", "kind": "hang", "seconds": 1.5}]})

#: Every other queue/store call hits lock contention first.
BUSY_PLAN = json.dumps({"faults": [{"op": "*", "kind": "busy", "every": 2}]})


def baseline_stdout(tmp_path, capsys):
    assert main(["fig3", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "baseline")]) == 0
    return capsys.readouterr().out


def traced_fleet(tmp_path, tag, *extra):
    """Run a traced fig3 queue fleet; returns the telemetry run dir."""
    obs = tmp_path / f"obs-{tag}"
    rc = main(["fig3", "--store", f"sqlite:{tmp_path}/{tag}.db",
               "--trace", "--telemetry", str(obs), *extra])
    assert rc == 0
    return obs / "fig3"


def stitched(run_dir):
    tree = stitch(load_trace_rows([run_dir]))
    assert completeness(tree) == [], "trace must be causally complete"
    return tree


def spans_for(tree, label, kind):
    """Spans of one cell, selected by label (keys are cache hashes)."""
    return sorted((s for s in tree["spans"].values()
                   if s["name"] == label and s["kind"] == kind),
                  key=lambda s: s["attempt"])


class TestRetriedCellTrace:
    def test_retry_leaves_a_complete_two_attempt_ladder(
            self, tmp_path, capsys, monkeypatch):
        baseline = baseline_stdout(tmp_path, capsys)
        monkeypatch.setenv(FAULTS_ENV, RETRY_PLAN)
        run_dir = traced_fleet(tmp_path, "retry", "--queue-workers", "2",
                               "--retries", "1")
        assert capsys.readouterr().out == baseline
        assert validate_run_dir(run_dir) == []
        tree = stitched(run_dir)

        label = "fig3[0.6]"
        claims = spans_for(tree, label, "claim")
        assert [c["attempt"] for c in claims] == [1, 2]
        executes = spans_for(tree, label, "execute")
        assert [e["attempt"] for e in executes] == [1, 2]
        # The faulted attempt carries the deterministic fault event.
        fault_events = [e for e in executes[0]["events"]
                        if e["name"] == "fault"]
        assert fault_events and all(e["det"] for e in fault_events)
        # Attempt 1 ends in a nack explaining the error and the retry.
        (nack,) = spans_for(tree, label, "nack")
        assert nack["attempt"] == 1
        names = [e["name"] for e in nack["events"]]
        assert "error" in names and "retry_scheduled" in names
        # Attempt 2 ends in the cell's single ack.
        (ack,) = spans_for(tree, label, "ack")
        assert ack["attempt"] == 2

    def test_canonical_projection_is_worker_count_invariant(
            self, tmp_path, capsys, monkeypatch):
        """Same sweep, same fault plan, different schedules: 1-worker
        and 2-worker fleets must agree byte for byte after the wall
        clock and schedule-dependent events are projected away."""
        monkeypatch.setenv(FAULTS_ENV, RETRY_PLAN)
        solo = traced_fleet(tmp_path, "solo", "--queue-workers", "1",
                            "--retries", "1")
        duo = traced_fleet(tmp_path, "duo", "--queue-workers", "2",
                           "--retries", "1")
        capsys.readouterr()
        assert (canonical(stitched(solo)) == canonical(stitched(duo)))


class TestStolenCellTrace:
    def test_a_steal_is_traced_and_the_tree_stays_complete(
            self, tmp_path, capsys, monkeypatch):
        """With heartbeats off, the slow cell's lease expires and the
        idle worker steals it. The re-execution is at-least-once noise:
        the output still matches and the stitched tree is complete —
        the steal survives only as a det=False event."""
        baseline = baseline_stdout(tmp_path, capsys)
        monkeypatch.setenv(FAULTS_ENV, SLOW_PLAN)
        url = f"sqlite:{tmp_path}/steal.db"
        obs = tmp_path / "obs-steal"
        rc = main(["fig3", "--store", url, "--queue-workers", "2",
                   "--queue-lease", "0.4", "--queue-renew-interval", "0",
                   "--trace", "--telemetry", str(obs)])
        assert rc == 0
        assert capsys.readouterr().out == baseline
        run_dir = obs / "fig3"
        tree = stitched(run_dir)
        steal_events = [e for span in tree["spans"].values()
                        for e in span["events"] if e["name"] == "steal"]
        assert steal_events, "the stolen lease must appear in the trace"
        assert all(not e["det"] for e in steal_events)
        store = open_store(url)
        try:
            states = store.make_queue("fig3").snapshot()
            assert sum(s.losses for s in states.values()) >= 1
        finally:
            store.close()


class TestStoreFaultTrace:
    def test_store_retries_are_traced_but_canonically_invisible(
            self, tmp_path, capsys, monkeypatch):
        """Queue-op contention shows up as store_retry events in the
        raw rows, yet the canonical projection equals a fault-free
        run's — backoff is schedule, not causality."""
        clean = traced_fleet(tmp_path, "clean", "--queue-workers", "2")
        monkeypatch.setenv(STORE_FAULTS_ENV, BUSY_PLAN)
        busy = traced_fleet(tmp_path, "busy", "--queue-workers", "2")
        monkeypatch.delenv(STORE_FAULTS_ENV)
        capsys.readouterr()
        rows = load_trace_rows([busy])
        retry_events = [e for row in rows for e in row["events"]
                        if e["name"] == "store_retry"]
        assert retry_events, "busy faults must be traced as store_retry"
        assert all(not e["det"] for e in retry_events)
        assert (canonical(stitched(busy)) == canonical(stitched(clean)))


class TestTracingOff:
    def test_untraced_runs_write_no_trace_artifacts(self, tmp_path,
                                                    capsys):
        obs = tmp_path / "obs-plain"
        rc = main(["fig3", "--store", f"sqlite:{tmp_path}/plain.db",
                   "--queue-workers", "2", "--telemetry", str(obs)])
        assert rc == 0
        capsys.readouterr()
        assert not (obs / "fig3" / "traces").exists()

    def test_trace_without_telemetry_is_a_usage_error(self, tmp_path,
                                                      capsys):
        with pytest.raises(SystemExit) as err:
            main(["fig3", "--cache-dir", str(tmp_path / "c"), "--trace"])
        assert err.value.code == 2
        assert "--trace requires --telemetry" in capsys.readouterr().err

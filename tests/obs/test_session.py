"""TelemetrySession end to end: activation, artifacts, reproducibility,
schema validation and the text dashboard."""

import json
import os

import pytest

import repro
from repro.errors import ConfigurationError
from repro.obs import (
    TELEMETRY_ENV,
    TELEMETRY_INTERVAL_ENV,
    TelemetrySession,
    render_report,
    series_config,
    validate_run_dir,
)
from repro.runner import Cell, run_cells

from .helpers import sim_cell


def _run_session(root, jobs=1, profile=False):
    session = TelemetrySession(root, experiment="obs-e2e", interval=64,
                               profile=profile)
    cells = [Cell("obs-e2e", (i,), sim_cell, (64, 300, i)) for i in range(2)]
    with session:
        with session.phase("sweep"):
            results = run_cells(cells, jobs=jobs,
                                telemetry=session.telemetry)
    return session, results


def test_interval_validated():
    with pytest.raises(ConfigurationError):
        TelemetrySession("/tmp/x", interval=0)


def test_activation_exports_and_restores_env(tmp_path):
    assert series_config() is None
    session = TelemetrySession(tmp_path / "t", interval=32)
    session.activate()
    try:
        assert os.environ[TELEMETRY_ENV] == str(tmp_path / "t")
        assert os.environ[TELEMETRY_INTERVAL_ENV] == "32"
        assert series_config() == (tmp_path / "t", 32)
        with pytest.raises(ConfigurationError):
            session.activate()  # double activation
    finally:
        session.finish()
    assert series_config() is None
    assert TELEMETRY_ENV not in os.environ


def test_artifacts_written_and_valid(tmp_path):
    session, results = _run_session(tmp_path / "run")
    root = session.dir
    assert (root / "manifest.json").is_file()
    assert (root / "metrics.jsonl").is_file()
    assert (root / "spans.jsonl").is_file()
    series = sorted(p.name for p in (root / "series").glob("*.jsonl"))
    assert series == ["obs-e2e_0_-000.jsonl", "obs-e2e_1_-000.jsonl"]
    assert validate_run_dir(root) == []

    manifest = json.loads((root / "manifest.json").read_text())
    assert manifest["version"] == repro.__version__
    assert manifest["experiment"] == "obs-e2e"
    assert manifest["interval"] == 64
    assert manifest["cells"]["completed"] == 2
    assert manifest["artifacts"]["series"] == series
    assert [p["name"] for p in manifest["wall"]["phases"]] == ["sweep"]
    # Wall-clock facts appear under "wall" only.
    deterministic = {k: v for k, v in manifest.items() if k != "wall"}
    assert "started_utc" not in json.dumps(deterministic)


def test_two_runs_byte_identical_modulo_wall(tmp_path):
    a, _ = _run_session(tmp_path / "a")
    b, _ = _run_session(tmp_path / "b", jobs=2)  # different parallelism

    assert (a.dir / "metrics.jsonl").read_bytes() == \
        (b.dir / "metrics.jsonl").read_bytes()
    for name in ("obs-e2e_0_-000.jsonl", "obs-e2e_1_-000.jsonl"):
        assert (a.dir / "series" / name).read_bytes() == \
            (b.dir / "series" / name).read_bytes()

    def stripped_spans(root):
        from repro.obs.schema import load_jsonl
        rows = load_jsonl(root / "spans.jsonl")
        for row in rows:
            row.pop("wall")
        return rows

    assert stripped_spans(a.dir) == stripped_spans(b.dir)

    def stripped_manifest(root):
        manifest = json.loads((root / "manifest.json").read_text())
        manifest.pop("wall")
        return manifest

    assert stripped_manifest(a.dir) == stripped_manifest(b.dir)


def test_profile_captures_written(tmp_path):
    session, _ = _run_session(tmp_path / "prof", profile=True)
    profiles = sorted(p.name for p in (session.dir / "profile").glob("*.prof"))
    assert profiles == ["obs-e2e_0_.prof", "obs-e2e_1_.prof"]


def test_report_renders_all_sections(tmp_path):
    session, _ = _run_session(tmp_path / "rep")
    text = render_report(session.dir)
    assert "experiment : obs-e2e" in text
    assert f"version    : repro {repro.__version__}" in text
    assert "slowest cells" in text
    assert "clean run" in text
    assert "obs-e2e_0_-000.jsonl" in text
    assert "occupancy" in text


def test_report_on_empty_dir(tmp_path):
    assert "no telemetry artifacts" in render_report(tmp_path)


def test_obs_cli_report_and_validate(tmp_path, capsys):
    from repro.obs.__main__ import main

    session, _ = _run_session(tmp_path / "cli")
    assert main(["validate", str(session.dir)]) == 0
    assert "valid" in capsys.readouterr().out
    assert main(["report", str(session.dir)]) == 0
    assert "obs-e2e" in capsys.readouterr().out
    # Corrupt one series row: validation must fail and say where.
    series = next((session.dir / "series").glob("*.jsonl"))
    series.write_text('{"bogus": 1}\n')
    assert main(["validate", str(session.dir)]) == 1
    assert series.name in capsys.readouterr().err


def test_run_experiment_facade_records_telemetry(tmp_path):
    from repro.experiments.registry import get_experiment

    result = repro.run_experiment("fig3", scale="smoke",
                                  telemetry=tmp_path / "fig3")
    assert result is not None
    # Observation never changes the rendered figure.
    plain = repro.run_experiment("fig3", scale="smoke")
    fmt = get_experiment("fig3").format
    assert fmt(result) == fmt(plain)
    assert validate_run_dir(tmp_path / "fig3") == []
    manifest = json.loads((tmp_path / "fig3" / "manifest.json").read_text())
    assert manifest["experiment"] == "fig3"
    assert manifest["cells"]["total"] > 0
    assert TELEMETRY_ENV not in os.environ

"""Metrics instruments: semantics, label schemas, deterministic export."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.schema import validate_metrics_row


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("cells.done", ("experiment",))
        c.inc(experiment="fig3")
        c.inc(2, experiment="fig3")
        c.inc(experiment="fig5")
        assert c.value(experiment="fig3") == 3
        assert c.value(experiment="fig5") == 1
        assert c.value(experiment="fig7") == 0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("n")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("n", ("experiment",))
        with pytest.raises(ConfigurationError):
            c.inc(scheme="fs")
        with pytest.raises(ConfigurationError):
            c.inc()


class TestGauge:
    def test_last_write_wins(self, registry):
        g = registry.gauge("workers")
        g.set(4)
        g.set(8)
        assert g.value() == 8

    def test_unset_series_is_none(self, registry):
        assert registry.gauge("w", ("experiment",)).value(
            experiment="fig2") is None


class TestHistogram:
    def test_bucketing(self, registry):
        h = registry.histogram("attempts", buckets=(1, 2, 5))
        for v in (1, 1, 2, 3, 100):
            h.observe(v)
        (row,) = h.rows()
        assert row["counts"] == [2, 1, 1, 1]  # <=1, <=2, <=5, +Inf
        assert row["count"] == 5
        assert row["sum"] == 107
        assert h.count() == 5

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=(5, 5))
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h2", buckets=())


class TestRegistry:
    def test_redeclare_returns_same_instrument(self, registry):
        assert registry.counter("n", ("a",)) is registry.counter("n", ("a",))

    def test_kind_collision_rejected(self, registry):
        registry.counter("n")
        with pytest.raises(ConfigurationError):
            registry.gauge("n")

    def test_label_schema_collision_rejected(self, registry):
        registry.counter("n", ("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("n", ("b",))

    def test_export_is_byte_stable_and_valid(self, registry, tmp_path):
        registry.counter("z.last", ("experiment",)).inc(experiment="fig5")
        registry.counter("a.first").inc(7)
        registry.gauge("m.middle").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        first = registry.export_jsonl(tmp_path / "one.jsonl").read_bytes()
        second = registry.export_jsonl(tmp_path / "two.jsonl").read_bytes()
        assert first == second
        import json
        lines = first.decode().splitlines()
        assert json.loads(lines[0]) == {"artifact": "metrics",
                                        "schema_version": 1}
        lines = lines[1:]
        # Sorted by instrument name; rows all schema-clean.
        names = [json.loads(line)["name"] for line in lines]
        assert names == sorted(names)
        for line in lines:
            assert validate_metrics_row(json.loads(line)) == []

"""Trace primitives: deterministic IDs, writer, spans, ambient events."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.schema import load_jsonl, validate_trace_row
from repro.obs.trace import (
    SPAN_KINDS,
    TRACE_ENV,
    TRACE_ID_ENV,
    TraceWriter,
    Tracer,
    add_event,
    ambient_tracer,
    close_ambient_writers,
    execute_span,
    set_worker,
    span_id,
    trace_id_for,
)


@pytest.fixture(autouse=True)
def _default_worker():
    """Worker names and cached writers must not leak across tests."""
    yield
    set_worker("")
    close_ambient_writers()


class TestIdentity:
    def test_trace_id_is_a_pure_function_of_the_key_sequence(self):
        a = trace_id_for(["k0", "k1"])
        assert a == trace_id_for(["k0", "k1"])
        assert a != trace_id_for(["k1", "k0"])  # order is identity
        assert a != trace_id_for(["k0"])
        assert len(a) == 32

    def test_span_id_depends_on_every_component(self):
        tid = trace_id_for(["k"])
        base = span_id(tid, "claim", "k", 1)
        assert base == span_id(tid, "claim", "k", 1)
        assert base != span_id(tid, "execute", "k", 1)
        assert base != span_id(tid, "claim", "k2", 1)
        assert base != span_id(tid, "claim", "k", 2)
        assert len(base) == 16

    def test_unknown_span_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown span kind"):
            span_id("t" * 32, "query", "k", 1)

    def test_every_declared_kind_is_accepted(self):
        for kind in SPAN_KINDS:
            assert span_id("t" * 32, kind, "k", 0)


class TestTraceWriter:
    def test_fresh_file_gets_the_schema_header(self, tmp_path):
        writer = TraceWriter(tmp_path / "traces" / "w.jsonl")
        writer.write({"hello": 1})
        writer.close()
        lines = [json.loads(line) for line in
                 (tmp_path / "traces" / "w.jsonl").read_text().splitlines()]
        assert lines[0] == {"artifact": "trace", "schema_version": 1}
        assert lines[1] == {"hello": 1}

    def test_append_mode_keeps_existing_rows_and_header(self, tmp_path):
        path = tmp_path / "w.jsonl"
        first = TraceWriter(path)
        first.write({"n": 1})
        first.close()
        second = TraceWriter(path)
        second.write({"n": 2})
        second.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # one header, two rows
        assert json.loads(lines[0])["artifact"] == "trace"


def make_tracer(tmp_path, worker="w1"):
    tid = trace_id_for(["k0", "k1"])
    return Tracer(tid, TraceWriter(tmp_path / f"{worker}.jsonl"), worker)


class TestSpan:
    def test_row_shape_is_schema_valid_and_wall_confined(self, tmp_path):
        tracer = make_tracer(tmp_path)
        with tracer.span("claim", "cell[0]", key="k0", attempt=1) as span:
            span.event("steal", worker="w2")
            span.event("fault", det=True, kind="raise")
        (row,) = load_jsonl(tmp_path / "w1.jsonl")
        assert validate_trace_row(row) == []
        assert row["span"] == span_id(tracer.trace_id, "claim", "k0", 1)
        assert row["status"] == "ok"
        assert row["events"] == [
            {"name": "steal", "det": False, "worker": "w2"},
            {"name": "fault", "det": True, "kind": "raise"},
        ]
        # Wall facts live under "wall" and nowhere else.
        assert set(row["wall"]) == {"start", "end", "worker"}
        assert row["wall"]["worker"] == "w1"
        assert row["wall"]["end"] >= row["wall"]["start"]

    def test_exception_exit_records_error_event_and_status(self, tmp_path):
        tracer = make_tracer(tmp_path)
        with pytest.raises(ValueError):
            with tracer.span("execute", "cell[0]", key="k0", attempt=1):
                raise ValueError("boom")
        (row,) = load_jsonl(tmp_path / "w1.jsonl")
        assert row["status"] == "error"
        assert {"name": "error", "det": True,
                "error": "ValueError"} in row["events"]

    def test_end_is_idempotent(self, tmp_path):
        tracer = make_tracer(tmp_path)
        span = tracer.span("ack", "cell[0]", key="k0", attempt=1)
        span.end()
        span.end("error")  # ignored: already written
        rows = load_jsonl(tmp_path / "w1.jsonl")
        assert len(rows) == 1
        assert rows[0]["status"] == "ok"

    def test_add_event_attaches_to_the_innermost_active_span(self, tmp_path):
        tracer = make_tracer(tmp_path)
        add_event("orphan")  # no active span: must be a silent no-op
        with tracer.span("claim", "cell[0]", key="k0", attempt=1):
            with tracer.span("execute", "cell[0]", key="k0", attempt=1):
                add_event("store_retry", op="queue.ack", n=1)
        claim, execute = sorted(load_jsonl(tmp_path / "w1.jsonl"),
                                key=lambda r: r["kind"])
        assert claim["events"] == []
        assert execute["events"] == [
            {"name": "store_retry", "det": False, "op": "queue.ack", "n": 1}]


class TestAmbient:
    def test_off_without_environment(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        monkeypatch.delenv(TRACE_ID_ENV, raising=False)
        assert ambient_tracer() is None
        assert ambient_tracer("some-trace") is None

    def test_off_without_a_trace_id(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        monkeypatch.delenv(TRACE_ID_ENV, raising=False)
        assert ambient_tracer() is None

    def test_writes_to_the_worker_named_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        tid = trace_id_for(["k0"])
        monkeypatch.setenv(TRACE_ID_ENV, tid)
        set_worker("worker-7")
        tracer = ambient_tracer()
        assert tracer is not None and tracer.trace_id == tid
        tracer.span("claim", "cell[0]", key="k0", attempt=1).end()
        (row,) = load_jsonl(tmp_path / "worker-7.jsonl")
        assert row["wall"]["worker"] == "worker-7"

    def test_explicit_trace_id_beats_the_environment(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        monkeypatch.setenv(TRACE_ID_ENV, trace_id_for(["env"]))
        payload_tid = trace_id_for(["payload"])
        tracer = ambient_tracer(payload_tid)
        assert tracer is not None and tracer.trace_id == payload_tid


class TestExecuteSpan:
    def test_yields_none_when_tracing_is_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        with execute_span("cell[0]", "k0", 1) as span:
            assert span is None

    def test_queue_context_parents_on_the_claim_span(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        set_worker("w-exec")
        tid = trace_id_for(["k0"])
        ctx = {"trace": tid, "parent": span_id(tid, "claim", "k0", 1)}
        with execute_span("cell[0]", "k0", 1, ctx):
            pass
        (row,) = load_jsonl(tmp_path / "w-exec.jsonl")
        assert row["kind"] == "execute"
        assert row["parent"] == ctx["parent"]
        assert row["trace"] == tid

    def test_without_context_parents_on_the_derived_cell_span(
            self, tmp_path, monkeypatch):
        """Pool/inline attempts get no queue payload: the trace ID comes
        from the environment and the parent is the cell span's pure-hash
        ID, so they join the same tree without plumbing."""
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        tid = trace_id_for(["k0"])
        monkeypatch.setenv(TRACE_ID_ENV, tid)
        set_worker("w-pool")
        with execute_span("cell[0]", "k0", 1):
            pass
        (row,) = load_jsonl(tmp_path / "w-pool.jsonl")
        assert row["parent"] == span_id(tid, "cell", "k0")

"""Module-level cell functions for observability tests.

Cells are pickled by reference into worker processes, so bodies must
live at module scope (mirrors ``tests/runner/helpers.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.cache.arrays import RandomCandidatesArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.trace.access import Trace
from repro.trace.mixing import run_round_robin


def sim_cell(lines, accesses, seed):
    """Drive a small cache through a trace mix and return its misses.

    Goes through :func:`run_round_robin`, whose access loop is wrapped
    in :func:`repro.obs.runtime.record_series` — so with telemetry
    active this cell emits one series file per invocation.
    """
    cache = PartitionedCache(RandomCandidatesArray(lines, 8, seed=seed),
                             LRURanking(), PartitioningFirstScheme(), 2)
    run_round_robin(cache, [Trace(range(seed, seed + 100)),
                            Trace(range(10_000, 10_100))], accesses)
    return list(cache.stats.misses)


def flaky_cell(sentinel_dir, name, value):
    """Fail with ValueError on the first attempt, succeed afterwards."""
    sentinel = Path(sentinel_dir, name)
    if not sentinel.exists():
        sentinel.write_text("tried")
        raise ValueError("transient fault")
    return value


def broken_cell(message):
    raise ValueError(message)

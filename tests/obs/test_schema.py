"""Schema validators: accept the writers' real output, reject drift."""

import pytest

from repro.obs.schema import (
    validate_manifest,
    validate_metrics_row,
    validate_series_row,
    validate_span_row,
)

GOOD_COUNTER = {"type": "counter", "name": "runner.retries",
                "labels": {"experiment": "fig5"}, "value": 3}
GOOD_HISTOGRAM = {"type": "histogram", "name": "runner.cell.attempts",
                  "labels": {}, "buckets": [1.0, 2.0], "counts": [4, 1, 0],
                  "count": 5, "sum": 6.0}
GOOD_SERIES = {"access": 1024, "part": 0, "occupancy": 128, "target": 256,
               "alpha": 1.25, "miss_rate": 0.5, "insertions": 7,
               "evictions": 7}
GOOD_SPAN = {"index": 0, "cell": "fig5[mcf]", "experiment": "fig5",
             "key": "ab12", "status": "ok", "attempts": 1, "retries": 0,
             "losses": 0, "cache_hit": False, "errors": [],
             "wall": {"queued_s": 0.0, "started_s": 0.1,
                      "finished_s": 1.0, "duration_s": 0.9}}
GOOD_MANIFEST = {"version": "1.0.0", "experiment": "fig5", "interval": 1024,
                 "profile": False,
                 "cells": {"total": 1, "completed": 1, "cached": 0,
                           "failed": 0, "retries": 0, "losses": 0},
                 "artifacts": {"metrics": "metrics.jsonl",
                               "spans": "spans.jsonl", "series": []},
                 "wall": {"started_utc": "", "total_s": 1.0, "phases": []}}


@pytest.mark.parametrize("checker,row", [
    (validate_metrics_row, GOOD_COUNTER),
    (validate_metrics_row, GOOD_HISTOGRAM),
    (validate_series_row, GOOD_SERIES),
    (validate_span_row, GOOD_SPAN),
    (validate_manifest, GOOD_MANIFEST),
])
def test_good_documents_validate(checker, row):
    assert checker(row) == []


@pytest.mark.parametrize("mutate,fragment", [
    (lambda r: r.pop("value"), "missing key 'value'"),
    (lambda r: r.update(value=-1), "must be an int >= 0"),
    (lambda r: r.update(value=1.5), "must be an int"),
    (lambda r: r.update(type="summary"), "must be counter/gauge/histogram"),
    (lambda r: r.update(extra=1), "unexpected key 'extra'"),
    (lambda r: r.update(labels={"experiment": 3}), "strings to strings"),
])
def test_bad_counter_rows_rejected(mutate, fragment):
    row = dict(GOOD_COUNTER)
    mutate(row)
    problems = validate_metrics_row(row)
    assert problems and any(fragment in p for p in problems), problems


@pytest.mark.parametrize("mutate,fragment", [
    (lambda r: r.update(buckets=[2.0, 1.0]), "strictly increasing"),
    (lambda r: r.update(counts=[4, 1]), "len(buckets)+1"),
    (lambda r: r.update(count=99), "sum of 'counts'"),
])
def test_bad_histogram_rows_rejected(mutate, fragment):
    row = dict(GOOD_HISTOGRAM)
    mutate(row)
    problems = validate_metrics_row(row)
    assert any(fragment in p for p in problems), problems


@pytest.mark.parametrize("mutate,fragment", [
    (lambda r: r.update(access=0), "'access' must be >= 1"),
    (lambda r: r.update(miss_rate=1.5), "in [0, 1]"),
    (lambda r: r.update(alpha="high"), "number or null"),
    (lambda r: r.pop("occupancy"), "missing key 'occupancy'"),
    (lambda r: r.update(part=-1), "int >= 0"),
])
def test_bad_series_rows_rejected(mutate, fragment):
    row = dict(GOOD_SERIES)
    mutate(row)
    problems = validate_series_row(row)
    assert any(fragment in p for p in problems), problems


def test_series_none_fields_allowed():
    row = dict(GOOD_SERIES, alpha=None, miss_rate=None)
    assert validate_series_row(row) == []


@pytest.mark.parametrize("mutate,fragment", [
    (lambda r: r.update(status="done"), "'status' must be one of"),
    (lambda r: r.update(cache_hit=1), "must be a bool"),
    (lambda r: r.update(errors=["ok", 3]), "list of strings"),
    (lambda r: r.update(wall={"queued_s": 0.0}), "missing key"),
    (lambda r: r.update(duration_s=1.0), "unexpected key 'duration_s'"),
])
def test_bad_span_rows_rejected(mutate, fragment):
    row = dict(GOOD_SPAN, wall=dict(GOOD_SPAN["wall"]))
    mutate(row)
    problems = validate_span_row(row)
    assert any(fragment in p for p in problems), problems


@pytest.mark.parametrize("mutate,fragment", [
    (lambda d: d.update(version=""), "non-empty string"),
    (lambda d: d.update(interval=0), "int >= 1"),
    (lambda d: d["cells"].pop("retries"), "missing key 'retries'"),
    (lambda d: d.update(artifacts="metrics.jsonl"), "must be an object"),
])
def test_bad_manifests_rejected(mutate, fragment):
    doc = dict(GOOD_MANIFEST, cells=dict(GOOD_MANIFEST["cells"]))
    mutate(doc)
    problems = validate_manifest(doc)
    assert any(fragment in p for p in problems), problems


def test_non_dict_documents_rejected():
    for checker in (validate_metrics_row, validate_series_row,
                    validate_span_row, validate_manifest):
        assert checker([1, 2]) and checker(None)

"""Tests for the CQVP baseline scheme."""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.cqvp import CQVPScheme


def make(array=None, targets=None, parts=2):
    return PartitionedCache(array or SetAssociativeArray(64, 16),
                            LRURanking(), CQVPScheme(), parts,
                            targets=targets)


def drive(cache, accesses, parts=2, space=4000, seed=0):
    rng = random.Random(seed)
    for _ in range(accesses):
        part = rng.randrange(parts)
        cache.access(part * 10**9 + rng.randrange(space), part)
    return cache


class TestVictimSelection:
    def test_invalid_first(self):
        cache = make()
        cache.access(1, 0)
        assert cache.stats.evictions == [0, 0]

    def test_evicts_quota_violator(self):
        cache = make(targets=[32, 32])
        for a in range(64):
            cache.access(a, 0)      # partition 0 over quota
        cache.access(10**9, 1)
        assert cache.stats.evictions == [1, 0]

    def test_violating_inserter_recycles_own_lines(self):
        """A partition over its own quota must not displace others."""
        cache = make(targets=[4, 60])
        for a in range(20):
            cache.access(10**9 + a, 1)   # partition 1 fills within quota
        p1_size = cache.actual_sizes[1]
        for a in range(64):
            cache.access(a, 0)           # partition 0 exceeds quota 4
        # Partition 1 unharmed once partition 0 is the violator.
        assert cache.actual_sizes[1] == p1_size
        assert cache.stats.evictions[1] == 0

    def test_quota_enforcement_under_pressure(self):
        cache = make(RandomCandidatesArray(256, 16, seed=1),
                     targets=[192, 64])
        drive(cache, 20_000, seed=2)
        assert cache.actual_sizes[0] == pytest.approx(192, abs=8)
        assert cache.actual_sizes[1] == pytest.approx(64, abs=8)
        cache.check_invariants()


class TestAssociativityDegradation:
    def test_aef_degrades_with_partition_count(self):
        """CQVP shares PF's failure mode: more partitions -> fewer victim
        candidates per eviction -> lower AEF (Section II-B)."""
        def aef_with(parts):
            cache = PartitionedCache(
                RandomCandidatesArray(64 * parts, 16, seed=parts),
                LRURanking(), CQVPScheme(), parts)
            drive(cache, 12_000 * parts // 2, parts=parts, space=500)
            return cache.stats.aef(0)

        assert aef_with(8) < aef_with(1) - 0.1

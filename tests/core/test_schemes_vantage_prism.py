"""Tests for the Vantage and PriSM baseline reimplementations."""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.prism import PriSMScheme
from repro.core.schemes.vantage import VantageScheme
from repro.errors import ConfigurationError


def drive(cache, accesses, parts, space=4000, seed=0, weights=None):
    rng = random.Random(seed)
    cumulative = None
    if weights:
        total = sum(weights)
        acc, cumulative = 0.0, []
        for w in weights:
            acc += w / total
            cumulative.append(acc)
    for _ in range(accesses):
        if cumulative:
            x = rng.random()
            part = next(i for i, c in enumerate(cumulative) if x <= c)
        else:
            part = rng.randrange(parts)
        cache.access(part * 10**9 + rng.randrange(space), part)
    return cache


class TestVantage:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            VantageScheme(unmanaged_fraction=0.0)
        with pytest.raises(ConfigurationError):
            VantageScheme(unmanaged_fraction=1.0)
        with pytest.raises(ConfigurationError):
            VantageScheme(max_aperture=0.0)
        with pytest.raises(ConfigurationError):
            VantageScheme(slack=0.0)

    def test_targets_scaled_by_managed_fraction(self):
        scheme = VantageScheme(unmanaged_fraction=0.1)
        PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                         scheme, 2, targets=[128, 128])
        assert scheme._scaled_targets == pytest.approx([115.2, 115.2])

    def test_targets_exceeding_capacity_rejected(self):
        scheme = VantageScheme()
        cache = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                                 scheme, 2)
        with pytest.raises(ConfigurationError):
            cache.set_targets([200, 100])

    def test_aperture_shape(self):
        scheme = VantageScheme(max_aperture=0.5, slack=0.1)
        PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                         scheme, 2, targets=[128, 128])
        # At/below scaled target: closed.
        scheme._managed_sizes[0] = 100
        assert scheme.aperture(0) == 0.0
        # Far above: saturated at A_max.
        scheme._managed_sizes[0] = 200
        assert scheme.aperture(0) == 0.5
        # In the slack band: linear.
        target = scheme._scaled_targets[0]
        scheme._managed_sizes[0] = int(target * 1.05)
        assert 0.0 < scheme.aperture(0) < 0.5

    def test_managed_size_accounting(self):
        scheme = VantageScheme()
        cache = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                                 scheme, 2)
        drive(cache, 10_000, 2)
        cache.check_invariants()
        managed = scheme.managed_sizes()
        # Managed counts can never exceed per-partition occupancy.
        assert all(0 <= m <= s
                   for m, s in zip(managed, cache.actual_sizes))
        # Demotions happened under pressure.
        assert scheme.demotions > 0

    def test_forced_eviction_rate_matches_theory(self):
        """With unmanaged fraction u and R candidates, forced evictions
        happen when no candidate is unmanaged: expect a rate in the
        vicinity of (1-u)**R (18.5% at u=0.1, R=16; Section VIII-A)."""
        scheme = VantageScheme(unmanaged_fraction=0.1)
        cache = PartitionedCache(RandomCandidatesArray(2048, 16, seed=3),
                                 LRURanking(), scheme, 2)
        drive(cache, 40_000, 2, space=30_000)
        evictions = sum(cache.stats.evictions)
        rate = scheme.forced_evictions / evictions
        assert 0.05 < rate < 0.45

    def test_isolation_weaker_than_pf(self):
        """Vantage cannot strictly guarantee targets (the paper's 'at most
        3% below target' observation): occupancies approximate targets."""
        scheme = VantageScheme()
        cache = PartitionedCache(SetAssociativeArray(1024, 16), LRURanking(),
                                 scheme, 2, targets=[768, 256])
        drive(cache, 30_000, 2)
        # Partition 0 should be near its target but need not match exactly.
        assert cache.actual_sizes[0] > 500


class TestPriSM:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PriSMScheme(window=0)

    def test_initial_distribution_uniform(self):
        scheme = PriSMScheme()
        PartitionedCache(SetAssociativeArray(64, 16), LRURanking(),
                         scheme, 4)
        assert scheme.eviction_probabilities() == pytest.approx([0.25] * 4)

    def test_distribution_refresh_formula(self):
        """White-box check of the PriSM update: E_i = I_i + drift_i / W,
        clamped and renormalized."""
        scheme = PriSMScheme(window=32, seed=1)
        cache = PartitionedCache(RandomCandidatesArray(256, 16, seed=1),
                                 LRURanking(), scheme, 2, targets=[192, 64])
        scheme._window_insertions = [30, 10]          # I = [0.75, 0.25]
        cache.actual_sizes[0] = 176                   # drift -16/32 = -0.5
        cache.actual_sizes[1] = 80                    # drift +16/32 = +0.5
        scheme._refresh_distribution()
        probs = scheme.eviction_probabilities()
        assert sum(probs) == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.25 / 1.0)  # (0.75-0.5)/(0.25+0.75)
        assert probs[1] == pytest.approx(0.75 / 1.0)
        # Counters reset for the next window.
        assert scheme._window_insertions == [0, 0]
        assert scheme._evictions_in_window == 0

    def test_distribution_clamped_non_negative(self):
        scheme = PriSMScheme(window=8, seed=1)
        cache = PartitionedCache(RandomCandidatesArray(256, 16, seed=1),
                                 LRURanking(), scheme, 2, targets=[192, 64])
        scheme._window_insertions = [0, 8]
        cache.actual_sizes[0] = 64                    # drift -128/8 = -16
        cache.actual_sizes[1] = 192
        scheme._refresh_distribution()
        probs = scheme.eviction_probabilities()
        assert probs[0] == 0.0
        assert probs[1] == pytest.approx(1.0)

    def test_abnormality_counted(self):
        """With many partitions and few candidates the selected partition
        is frequently absent (the paper's PriSM failure mode)."""
        scheme = PriSMScheme(seed=0)
        cache = PartitionedCache(SetAssociativeArray(256, 4), LRURanking(),
                                 scheme, 16)
        drive(cache, 12_000, 16, space=2000)
        assert scheme.selections > 0
        assert scheme.abnormality_rate() > 0.3

    def test_abnormality_rare_with_few_partitions(self):
        scheme = PriSMScheme(seed=0)
        cache = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                                 scheme, 2)
        drive(cache, 10_000, 2)
        assert scheme.abnormality_rate() < 0.2

    def test_abnormality_rate_empty(self):
        assert PriSMScheme().abnormality_rate() == 0.0

    def test_sampling_determinism(self):
        a, b = PriSMScheme(seed=9), PriSMScheme(seed=9)
        ca = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                              a, 2)
        cb = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                              b, 2)
        drive(ca, 5_000, 2, seed=4)
        drive(cb, 5_000, 2, seed=4)
        assert ca.actual_sizes == cb.actual_sizes
        assert a.abnormalities == b.abnormalities

    def test_sizing_reasonable_at_low_partition_count(self):
        scheme = PriSMScheme(seed=2)
        cache = PartitionedCache(SetAssociativeArray(1024, 16), LRURanking(),
                                 scheme, 2, targets=[768, 256])
        drive(cache, 30_000, 2)
        assert cache.actual_sizes[0] == pytest.approx(768, abs=120)

"""Tests for the futility ranking schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.futility import (
    TIMESTAMP_MOD,
    CoarseTimestampLRURanking,
    LFURanking,
    LRURanking,
    OPTRanking,
    RandomRanking,
    make_ranking,
)
from repro.errors import ConfigurationError


def bound(ranking, lines=16, partitions=2):
    ranking.bind(lines, partitions)
    return ranking


class TestFactory:
    @pytest.mark.parametrize("kind", ["lru", "lfu", "opt", "coarse-ts-lru",
                                      "random"])
    def test_make_ranking(self, kind):
        r = make_ranking(kind)
        assert r.name == kind

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_ranking("plru")

    def test_bind_validation(self):
        with pytest.raises(ConfigurationError):
            LRURanking().bind(0, 1)


class TestLRURanking:
    def test_futility_is_normalized_recency_rank(self):
        r = bound(LRURanking())
        for idx in range(4):
            r.on_insert(idx, 0)
        # Insertion order 0,1,2,3: line 0 is oldest -> futility 1.
        assert r.futility(0) == pytest.approx(4 / 4)
        assert r.futility(1) == pytest.approx(3 / 4)
        assert r.futility(2) == pytest.approx(2 / 4)
        assert r.futility(3) == pytest.approx(1 / 4)

    def test_hit_moves_to_most_recent(self):
        r = bound(LRURanking())
        for idx in range(3):
            r.on_insert(idx, 0)
        r.on_hit(0, 0)
        assert r.futility(0) == pytest.approx(1 / 3)
        assert r.futility(1) == pytest.approx(1.0)

    def test_partitions_ranked_independently(self):
        r = bound(LRURanking())
        r.on_insert(0, 0)
        r.on_insert(1, 1)
        r.on_insert(2, 1)
        # Partition 0 has one line: futility 1 regardless of global age.
        assert r.futility(0) == pytest.approx(1.0)
        assert r.futility(1) == pytest.approx(1.0)
        assert r.futility(2) == pytest.approx(0.5)

    def test_evict_removes_from_rank(self):
        r = bound(LRURanking())
        r.on_insert(0, 0)
        r.on_insert(1, 0)
        r.on_evict(0, 0)
        assert r.partition_size(0) == 1
        assert r.futility(1) == pytest.approx(1.0)

    def test_most_futile(self):
        r = bound(LRURanking())
        for idx in range(5):
            r.on_insert(idx, 0)
        assert r.most_futile(0) == 0
        r.on_hit(0, 0)
        assert r.most_futile(0) == 1

    def test_most_futile_empty_partition(self):
        r = bound(LRURanking())
        with pytest.raises(IndexError):
            r.most_futile(0)

    def test_on_move(self):
        r = bound(LRURanking())
        r.on_insert(0, 0)
        r.on_insert(1, 0)
        r.on_move(0, 5)
        assert r.futility(5) == pytest.approx(1.0)
        assert r.most_futile(0) == 5
        assert r.partition_size(0) == 2


class TestLFURanking:
    def test_low_count_is_futile(self):
        r = bound(LFURanking())
        r.on_insert(0, 0)
        r.on_insert(1, 0)
        for _ in range(3):
            r.on_hit(0, 0)
        assert r.futility(1) > r.futility(0)
        assert r.most_futile(0) == 1

    def test_tie_broken_by_recency(self):
        r = bound(LFURanking())
        r.on_insert(0, 0)
        r.on_insert(1, 0)
        # Equal counts: the older line (0) must rank more futile.
        assert r.futility(0) > r.futility(1)

    def test_count_reset_on_evict(self):
        r = bound(LFURanking())
        r.on_insert(0, 0)
        r.on_hit(0, 0)
        r.on_evict(0, 0)
        r.on_insert(0, 0)     # reinsertion starts at count 1
        r.on_insert(1, 0)
        r.on_hit(1, 0)
        assert r.most_futile(0) == 0

    def test_move_preserves_count(self):
        r = bound(LFURanking())
        r.on_insert(0, 0)
        r.on_hit(0, 0)
        r.on_move(0, 3)
        r.on_insert(1, 0)
        # Line at 3 has count 2, line 1 count 1 -> 1 is more futile.
        assert r.most_futile(0) == 1


class TestOPTRanking:
    def test_requires_next_use(self):
        r = bound(OPTRanking())
        with pytest.raises(ConfigurationError):
            r.on_insert(0, 0)

    def test_farthest_next_use_most_futile(self):
        r = bound(OPTRanking())
        r.on_insert(0, 0, next_use=100)
        r.on_insert(1, 0, next_use=5)
        r.on_insert(2, 0, next_use=50)
        assert r.most_futile(0) == 0
        assert r.futility(1) == pytest.approx(1 / 3)
        assert r.futility(0) == pytest.approx(1.0)

    def test_hit_updates_next_use(self):
        r = bound(OPTRanking())
        r.on_insert(0, 0, next_use=10)
        r.on_insert(1, 0, next_use=20)
        r.on_hit(0, 0, next_use=1000)
        assert r.most_futile(0) == 0


class TestRandomRanking:
    def test_deterministic_by_seed(self):
        a, b = bound(RandomRanking(seed=3)), bound(RandomRanking(seed=3))
        for idx in range(8):
            a.on_insert(idx, 0)
            b.on_insert(idx, 0)
        assert [a.futility(i) for i in range(8)] == \
               [b.futility(i) for i in range(8)]


class TestCoarseTimestampLRU:
    def test_period_from_targets(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([160, 16])
        assert r._period == [10, 1]

    def test_target_length_validation(self):
        r = bound(CoarseTimestampLRURanking())
        with pytest.raises(ConfigurationError):
            r.set_targets([1, 2, 3])

    def test_raw_futility_is_timestamp_distance(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])  # period 1: tick every access
        r.on_insert(0, 0)        # ts=1 after tick
        r.on_insert(1, 0)        # ts=2
        r.on_insert(2, 0)        # ts=3
        assert r.raw_futility(0) == 2
        assert r.raw_futility(1) == 1
        assert r.raw_futility(2) == 0

    def test_hit_refreshes_timestamp(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])
        r.on_insert(0, 0)
        r.on_insert(1, 0)
        r.on_hit(0, 0)
        assert r.raw_futility(0) == 0
        assert r.raw_futility(1) == 1

    def test_wraparound_is_unsigned_8bit(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])
        r.on_insert(0, 0)
        # Age line 0 by exactly TIMESTAMP_MOD ticks: distance wraps to 0.
        for _ in range(TIMESTAMP_MOD):
            r._tick(0)
        assert r.raw_futility(0) == 0

    def test_normalized_futility_in_unit_interval(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])
        r.on_insert(0, 0)
        for _ in range(100):
            r._tick(0)
        assert 0.0 <= r.futility(0) <= 1.0
        assert r.futility(0) == pytest.approx(100 / 255)

    def test_partition_sizes(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])
        r.on_insert(0, 0)
        r.on_insert(1, 1)
        r.on_insert(2, 1)
        assert r.partition_size(0) == 1
        assert r.partition_size(1) == 2
        r.on_evict(2, 1)
        assert r.partition_size(1) == 1

    def test_move(self):
        r = bound(CoarseTimestampLRURanking())
        r.set_targets([16, 16])
        r.on_insert(0, 0)
        r._tick(0)
        old = r.raw_futility(0)
        r.on_move(0, 7)
        assert r.raw_futility(7) == old

    def test_period_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            CoarseTimestampLRURanking(period_fraction=0)


@pytest.mark.parametrize("kind", ["lru", "lfu", "random"])
@given(ops=st.lists(st.integers(0, 9), min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_property_futility_values_are_distinct_ranks(kind, ops):
    """Resident lines of a partition always have distinct futility values
    forming the set {1/M, 2/M, ..., 1} (the strict total order the paper's
    model requires)."""
    r = make_ranking(kind) if kind != "random" else RandomRanking(seed=1)
    r.bind(10, 1)
    resident = set()
    for idx in ops:
        if idx in resident:
            r.on_hit(idx, 0)
        else:
            r.on_insert(idx, 0)
            resident.add(idx)
    m = len(resident)
    values = sorted(r.futility(i) for i in resident)
    expected = [k / m for k in range(1, m + 1)]
    assert values == pytest.approx(expected)

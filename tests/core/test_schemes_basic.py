"""Tests for the scheme registry, base helpers, PF and unpartitioned."""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes import available_schemes, make_scheme, register_scheme
from repro.core.schemes.base import PartitioningScheme
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.core.schemes.unpartitioned import UnpartitionedScheme
from repro.errors import ConfigurationError
from tests.conftest import drive_uniform


def test_registry_contains_all_paper_schemes():
    names = available_schemes()
    for expected in ("pf", "fs", "fs-feedback", "vantage", "prism",
                     "full-assoc", "way-partition", "unpartitioned"):
        assert expected in names


def test_make_scheme_unknown():
    with pytest.raises(ConfigurationError):
        make_scheme("utility-first")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError):
        @register_scheme
        class Clone(PartitioningScheme):
            name = "pf"


class TestPartitioningFirst:
    def make(self, targets=None):
        return PartitionedCache(SetAssociativeArray(64, 16), LRURanking(),
                                PartitioningFirstScheme(), 2, targets=targets)

    def test_prefers_invalid_slots(self):
        cache = self.make()
        cache.access(1, 0)
        cache.access(2, 0)
        assert cache.stats.evictions == [0, 0]

    def test_partition_selection_picks_most_oversized(self):
        cache = self.make(targets=[32, 32])
        # Fill partition 0 well beyond partition 1.
        for a in range(64):
            cache.access(a, 0)
        over_before = cache.actual_sizes[0]
        cache.access(10_000, 1)  # miss from partition 1
        # The eviction must come from oversized partition 0.
        assert cache.actual_sizes[0] == over_before - 1
        assert cache.stats.evictions[0] == 1
        assert cache.stats.evictions[1] == 0

    def test_victim_is_most_futile_of_chosen_partition(self):
        # Single partition: PF == evict the LRU line of the (only) set.
        cache = PartitionedCache(SetAssociativeArray(4, 4), LRURanking(),
                                 PartitioningFirstScheme(), 1)
        for a in [1, 2, 3, 4]:
            cache.access(a, 0)
        cache.access(2, 0)       # refresh line 2
        cache.access(5, 0)       # forces eviction: LRU victim is 1
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_precise_sizing_under_asymmetric_pressure(self):
        """PF keeps sizes at target even with a 9:1 insertion imbalance
        (the Fig. 5 property, MAD < 1 line)."""
        cache = PartitionedCache(RandomCandidatesArray(256, 16, seed=1),
                                 LRURanking(), PartitioningFirstScheme(), 2,
                                 targets=[128, 128])
        rng = random.Random(0)
        for i in range(20_000):
            part = 0 if rng.random() < 0.9 else 1
            cache.access(part * 10**9 + rng.randrange(4000), part)
        assert abs(cache.actual_sizes[0] - 128) <= 1
        assert abs(cache.actual_sizes[1] - 128) <= 1


class TestUnpartitioned:
    def test_ignores_targets(self):
        cache = PartitionedCache(RandomCandidatesArray(128, 8, seed=2),
                                 LRURanking(), UnpartitionedScheme(), 2,
                                 targets=[120, 8])
        rng = random.Random(1)
        for _ in range(8000):
            part = rng.randrange(2)
            cache.access(part * 10**9 + rng.randrange(2000), part)
        # Symmetric traffic -> roughly symmetric occupancy despite the
        # 120/8 targets.
        assert cache.actual_sizes[1] > 32

    def test_evicts_globally_least_useful(self):
        cache = PartitionedCache(SetAssociativeArray(4, 4), LRURanking(),
                                 UnpartitionedScheme(), 2)
        cache.access(1, 0)
        cache.access(2, 1)
        cache.access(3, 1)
        cache.access(4, 1)
        cache.access(5, 1)  # evicts the oldest overall: address 1 (part 0)
        assert not cache.contains(1)

"""Tests for the FullAssoc ideal scheme and the way-partitioning baseline."""

import random

import pytest

from repro.cache.arrays import FullyAssociativeArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.full_assoc import FullAssocScheme
from repro.core.schemes.way_partition import WayPartitionScheme
from repro.errors import ConfigurationError


def drive(cache, accesses, parts=2, space=4000, seed=0):
    rng = random.Random(seed)
    for _ in range(accesses):
        part = rng.randrange(parts)
        cache.access(part * 10**9 + rng.randrange(space), part)
    return cache


class TestFullAssoc:
    def test_requires_exact_ranking(self):
        with pytest.raises(ConfigurationError):
            PartitionedCache(FullyAssociativeArray(64),
                             CoarseTimestampLRURanking(),
                             FullAssocScheme(), 2)

    def test_exact_sizing(self):
        cache = PartitionedCache(FullyAssociativeArray(256), LRURanking(),
                                 FullAssocScheme(), 2, targets=[192, 64])
        drive(cache, 20_000)
        assert cache.actual_sizes == [192, 64]
        cache.check_invariants()

    def test_full_associativity(self):
        """FullAssoc always evicts the most futile line of the chosen
        partition: every eviction futility is exactly 1."""
        cache = PartitionedCache(FullyAssociativeArray(128), LRURanking(),
                                 FullAssocScheme(), 2)
        drive(cache, 8_000)
        for p in range(2):
            samples = cache.stats.eviction_futility_samples(p)
            assert len(samples) > 0
            assert all(s == pytest.approx(1.0) for s in samples)

    def test_single_partition_is_plain_lru(self):
        cache = PartitionedCache(FullyAssociativeArray(4), LRURanking(),
                                 FullAssocScheme(), 1)
        for a in [1, 2, 3, 4]:
            cache.access(a, 0)
        cache.access(1, 0)   # refresh
        cache.access(5, 0)   # evicts LRU = 2
        assert not cache.contains(2)
        assert cache.contains(1)

    def test_eviction_from_most_oversized(self):
        cache = PartitionedCache(FullyAssociativeArray(64), LRURanking(),
                                 FullAssocScheme(), 2, targets=[32, 32])
        for a in range(64):
            cache.access(a, 0)   # partition 0 fills the whole array
        cache.access(10**9, 1)
        assert cache.stats.evictions == [1, 0]


class TestWayPartition:
    def make(self, num_lines=256, ways=16, parts=2, targets=None):
        return PartitionedCache(SetAssociativeArray(num_lines, ways),
                                LRURanking(), WayPartitionScheme(), parts,
                                targets=targets)

    def test_needs_enough_ways(self):
        with pytest.raises(ConfigurationError):
            PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                             WayPartitionScheme(), 8)

    def test_way_assignment_matches_targets(self):
        cache = self.make(targets=[192, 64])
        scheme = cache.scheme
        assert len(scheme.way_assignment()) == 16
        assert len(scheme.ways_of(0)) == 12
        assert len(scheme.ways_of(1)) == 4

    def test_every_partition_gets_a_way(self):
        cache = self.make(parts=4, targets=[253, 1, 1, 1])
        for p in range(4):
            assert len(cache.scheme.ways_of(p)) >= 1

    def test_isolation_by_construction(self):
        """A flooding partition can never displace the other's lines."""
        cache = self.make(targets=[128, 128])
        for a in range(8):
            cache.access(a, 0)
        for a in range(10_000):
            cache.access(10**9 + a, 1)
        for a in range(8):
            assert cache.contains(a)
        assert cache.stats.evictions[0] == 0

    def test_occupancy_bounded_by_way_share(self):
        cache = self.make(targets=[128, 128])
        drive(cache, 20_000)
        # 8 ways of 16 sets each.
        assert cache.actual_sizes[0] <= 8 * 16
        assert cache.actual_sizes[1] <= 8 * 16

    def test_resize_flushes_transferred_ways(self):
        """The placement-scheme resizing penalty: lines stranded in
        transferred ways are invalidated and counted."""
        cache = self.make(targets=[128, 128])
        drive(cache, 10_000, seed=3)
        assert cache.stats.flushes == 0
        cache.set_targets([224, 32])
        assert cache.scheme.flushes > 0
        assert cache.stats.flushes == cache.scheme.flushes
        cache.check_invariants()

    def test_resize_to_same_targets_is_free(self):
        cache = self.make(targets=[128, 128])
        drive(cache, 5_000)
        cache.set_targets([128, 128])
        assert cache.scheme.flushes == 0

    def test_foreign_lines_evicted_first_after_resize(self):
        cache = self.make(targets=[224, 32])
        drive(cache, 10_000, seed=5)
        cache.set_targets([32, 224])
        # After the flush, remaining foreign lines in partition 1's new
        # ways are preferred victims; drive partition 1 and verify
        # invariants hold throughout.
        for a in range(5_000):
            cache.access(10**9 + a, 1)
        cache.check_invariants()

    def test_associativity_equals_way_count(self):
        """A 2-way partition of a 16-way cache behaves like a 2-way cache:
        its AEF is far below the full 16-way value."""
        cache = self.make(targets=[224, 32])
        drive(cache, 30_000, seed=7)
        aef_small = cache.stats.aef(1)
        assert aef_small < 0.85

"""Tests for the analytical Futility Scaling framework (Section IV)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.scaling import (
    alpha_for_two_partitions,
    analytic_aef,
    check_feasible,
    eviction_futility_cdf,
    eviction_rates,
    max_holdable_size_fraction,
    min_feasible_insertion_rate,
    scaling_factors_two_partitions,
    solve_scaling_factors,
)
from repro.errors import ConfigurationError, InfeasiblePartitioningError

R = 16  # the paper's candidate count


class TestEquationOne:
    def test_paper_figure3_top_point(self):
        """I2=0.9, S2=0.2, R=16 sits just below 3.0 in Fig. 3."""
        alpha = alpha_for_two_partitions(0.2, 0.9, R)
        assert alpha == pytest.approx(2.8348, abs=1e-3)

    def test_identity_when_balanced(self):
        """I/S = 1 for both partitions -> no scaling needed."""
        for s2 in (0.1, 0.3, 0.5):
            assert alpha_for_two_partitions(s2, s2, R) == pytest.approx(1.0)

    def test_monotone_in_insertion_rate(self):
        alphas = [alpha_for_two_partitions(0.3, i2, R)
                  for i2 in (0.4, 0.6, 0.8, 0.95)]
        assert alphas == sorted(alphas)
        assert alphas[0] < alphas[-1]

    def test_monotone_in_size_fraction(self):
        alphas = [alpha_for_two_partitions(s2, 0.8, R)
                  for s2 in (0.2, 0.3, 0.4, 0.5)]
        assert alphas == sorted(alphas, reverse=True)

    def test_infeasible_raises(self):
        # Partition 1 huge and almost never inserting: S1**R bound violated.
        with pytest.raises(InfeasiblePartitioningError):
            alpha_for_two_partitions(0.05, 1.0 - 1e-9, R)

    def test_requires_oversubscription(self):
        with pytest.raises(ConfigurationError):
            alpha_for_two_partitions(0.6, 0.4, R)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            alpha_for_two_partitions(0.0, 0.5, R)
        with pytest.raises(ConfigurationError):
            alpha_for_two_partitions(0.2, 1.5, R)
        with pytest.raises(ConfigurationError):
            alpha_for_two_partitions(0.2, 0.5, 1)

    def test_wrapper_orders_partitions(self):
        a = scaling_factors_two_partitions([0.8, 0.2], [0.1, 0.9], R)
        assert a[0] == 1.0 and a[1] > 1.0
        b = scaling_factors_two_partitions([0.2, 0.8], [0.9, 0.1], R)
        assert b[1] == 1.0 and b[0] > 1.0
        assert a[1] == pytest.approx(b[0])

    @given(s2=st.floats(0.05, 0.6), i2=st.floats(0.0, 0.98),
           r=st.integers(2, 64))
    @settings(max_examples=200)
    def test_property_steady_state(self, s2, i2, r):
        """Whenever Eq. (1) yields an alpha, plugging it back into the
        eviction-rate model must reproduce the insertion rates exactly."""
        assume(i2 >= s2)
        try:
            alpha = alpha_for_two_partitions(s2, i2, r)
        except InfeasiblePartitioningError:
            return
        assume(alpha < 1e9)
        rates = eviction_rates([1.0, alpha], [1.0 - s2, s2], r)
        assert rates[0] == pytest.approx(1.0 - i2, abs=1e-7)
        assert rates[1] == pytest.approx(i2, abs=1e-7)


class TestEvictionRates:
    def test_no_scaling_gives_size_shares(self):
        rates = eviction_rates([1.0, 1.0, 1.0], [0.5, 0.3, 0.2], R)
        assert rates == pytest.approx([0.5, 0.3, 0.2])

    def test_scaling_up_increases_share(self):
        base = eviction_rates([1.0, 1.0], [0.5, 0.5], R)[1]
        scaled = eviction_rates([1.0, 2.0], [0.5, 0.5], R)[1]
        assert scaled > base

    def test_scale_invariance(self):
        a = eviction_rates([1.0, 2.5], [0.7, 0.3], R)
        b = eviction_rates([2.0, 5.0], [0.7, 0.3], R)
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            eviction_rates([1.0], [0.5, 0.5], R)
        with pytest.raises(ConfigurationError):
            eviction_rates([1.0, -1.0], [0.5, 0.5], R)

    @given(st.lists(st.floats(0.2, 8.0), min_size=1, max_size=6),
           st.integers(1, 32), st.data())
    @settings(max_examples=150)
    def test_property_rates_sum_to_one(self, alphas, r, data):
        n = len(alphas)
        weights = data.draw(st.lists(st.floats(0.05, 1.0), min_size=n,
                                     max_size=n))
        total = sum(weights)
        sizes = [w / total for w in weights]
        rates = eviction_rates(alphas, sizes, r)
        assert sum(rates) == pytest.approx(1.0, abs=1e-9)
        assert all(rate >= -1e-12 for rate in rates)


class TestFeasibility:
    def test_bound_formula(self):
        assert min_feasible_insertion_rate(0.5, 4) == pytest.approx(0.0625)
        assert max_holdable_size_fraction(0.0625, 4) == pytest.approx(0.5)

    def test_paper_example_one_percent(self):
        """I = 0.01 at R = 16 can hold about 75% of the cache."""
        assert max_holdable_size_fraction(0.01, 16) == pytest.approx(
            0.75, abs=0.005)

    def test_check_feasible_passes_balanced(self):
        check_feasible([0.5, 0.5], [0.5, 0.5], R)

    def test_check_feasible_raises(self):
        with pytest.raises(InfeasiblePartitioningError):
            check_feasible([0.9, 0.1], [0.9 ** 16 / 2, 1 - 0.9 ** 16 / 2], 16)

    @given(s=st.floats(0.01, 0.99), r=st.integers(1, 64))
    @settings(max_examples=100)
    def test_property_bound_functions_are_inverses(self, s, r):
        i = min_feasible_insertion_rate(s, r)
        assert max_holdable_size_fraction(i, r) == pytest.approx(s, rel=1e-9)


class TestSolver:
    def test_matches_closed_form_two_partitions(self):
        solved = solve_scaling_factors([0.8, 0.2], [0.1, 0.9], R)
        assert solved[0] == pytest.approx(1.0)
        assert solved[1] == pytest.approx(
            alpha_for_two_partitions(0.2, 0.9, R), rel=1e-6)

    def test_single_partition(self):
        assert solve_scaling_factors([1.0], [1.0], R) == [1.0]

    def test_balanced_gives_all_ones(self):
        solved = solve_scaling_factors([0.25] * 4, [0.25] * 4, R)
        assert solved == pytest.approx([1.0] * 4)

    def test_four_partitions_fixed_point(self):
        sizes = [0.25] * 4
        insertions = [0.1, 0.2, 0.3, 0.4]
        alphas = solve_scaling_factors(sizes, insertions, R)
        rates = eviction_rates(alphas, sizes, R)
        assert rates == pytest.approx(insertions, abs=1e-8)
        assert min(alphas) == pytest.approx(1.0)

    def test_infeasible_detected(self):
        with pytest.raises(InfeasiblePartitioningError):
            solve_scaling_factors([0.9, 0.1],
                                  [0.9 ** 16 / 2, 1 - 0.9 ** 16 / 2], 16)

    @given(st.integers(2, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_solver_reaches_fixed_point(self, n, data):
        weights_s = data.draw(st.lists(st.floats(0.1, 1.0), min_size=n,
                                       max_size=n))
        weights_i = data.draw(st.lists(st.floats(0.1, 1.0), min_size=n,
                                       max_size=n))
        sizes = [w / sum(weights_s) for w in weights_s]
        insertions = [w / sum(weights_i) for w in weights_i]
        try:
            alphas = solve_scaling_factors(sizes, insertions, 8)
        except InfeasiblePartitioningError:
            return
        rates = eviction_rates(alphas, sizes, 8)
        assert rates == pytest.approx(insertions, abs=1e-7)


class TestAnalyticAssociativity:
    def test_single_partition_aef_is_r_over_r_plus_one(self):
        for r in (2, 4, 16, 64):
            assert analytic_aef([1.0], [1.0], r) == pytest.approx(
                r / (r + 1))

    def test_unscaled_partition_keeps_full_associativity(self):
        """Section IV-C: an unscaled partition's AEF equals the single-
        partition value regardless of the other partition's scaling."""
        for alpha2 in (1.5, 3.0, 10.0):
            aef = analytic_aef([1.0, alpha2], [0.8, 0.2], R, 0)
            assert aef == pytest.approx(R / (R + 1), abs=1e-9)

    def test_scaled_partition_degrades(self):
        aef_scaled = analytic_aef([1.0, 5.0], [0.8, 0.2], R, 1)
        assert aef_scaled < R / (R + 1)

    def test_degradation_monotone_in_alpha(self):
        aefs = [analytic_aef([1.0, a], [0.8, 0.2], R, 1)
                for a in (1.0, 2.0, 4.0, 8.0)]
        assert aefs == sorted(aefs, reverse=True)

    def test_whole_cache_aef_is_weighted(self):
        alphas, sizes = [1.0, 3.0], [0.7, 0.3]
        rates = eviction_rates(alphas, sizes, R)
        expected = sum(rate * analytic_aef(alphas, sizes, R, i)
                       for i, rate in enumerate(rates))
        assert analytic_aef(alphas, sizes, R) == pytest.approx(expected)

    def test_cdf_endpoints_and_monotonicity(self):
        alphas, sizes = [1.0, 2.0], [0.6, 0.4]
        assert eviction_futility_cdf(alphas, sizes, R, 1, 0.0) == 0.0
        assert eviction_futility_cdf(alphas, sizes, R, 1, 1.0) == \
            pytest.approx(1.0)
        values = [eviction_futility_cdf(alphas, sizes, R, 1, y)
                  for y in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_cdf_validation(self):
        with pytest.raises(ConfigurationError):
            eviction_futility_cdf([1.0], [1.0], R, 0, 1.5)

    @given(alpha=st.floats(1.0, 20.0), s2=st.floats(0.05, 0.9),
           y=st.floats(0.0, 1.0))
    @settings(max_examples=100)
    def test_property_cdf_in_unit_interval(self, alpha, s2, y):
        cdf = eviction_futility_cdf([1.0, alpha], [1 - s2, s2], R, 1, y)
        assert -1e-9 <= cdf <= 1 + 1e-9


class TestApproximatePFAEF:
    def test_single_partition_exact(self):
        from repro.core.scaling import approximate_pf_aef
        assert approximate_pf_aef(1, 16) == pytest.approx(16 / 17)

    def test_monotone_decreasing_in_partitions(self):
        from repro.core.scaling import approximate_pf_aef
        values = [approximate_pf_aef(n, 16) for n in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_approaches_random_floor(self):
        from repro.core.scaling import approximate_pf_aef
        assert approximate_pf_aef(10_000, 16) == pytest.approx(0.5, abs=0.01)

    def test_matches_paper_worst_case_regime(self):
        """N=32, R=16 (the Fig. 2a endpoint): paper measures ~0.56, our
        simulation 0.53, the model predicts ~0.52."""
        from repro.core.scaling import approximate_pf_aef
        assert approximate_pf_aef(32, 16) == pytest.approx(0.53, abs=0.03)

    def test_validation(self):
        from repro.core.scaling import approximate_pf_aef
        with pytest.raises(ConfigurationError):
            approximate_pf_aef(0, 16)
        with pytest.raises(ConfigurationError):
            approximate_pf_aef(2, 0)

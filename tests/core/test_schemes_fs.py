"""Tests for the Futility Scaling schemes (static and feedback-based)."""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.scaling import alpha_for_two_partitions
from repro.core.schemes.futility_scaling import (
    FeedbackFutilityScalingScheme,
    FutilityScalingScheme,
)
from repro.errors import ConfigurationError


def drive_two_partition(cache, accesses=20_000, p0_share=0.5, space=5000,
                        seed=0):
    rng = random.Random(seed)
    for _ in range(accesses):
        part = 0 if rng.random() < p0_share else 1
        cache.access(part * 10**9 + rng.randrange(space), part)
    return cache


class TestStaticFS:
    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            FutilityScalingScheme(alphas=[1.0], insertion_rates=[0.5, 0.5])
        with pytest.raises(ConfigurationError):
            FutilityScalingScheme(alphas=[0.0, 1.0])
        with pytest.raises(ConfigurationError):
            FutilityScalingScheme().alphas  # not configured yet

    def test_alphas_solved_from_insertion_rates(self):
        scheme = FutilityScalingScheme(insertion_rates=[0.1, 0.9])
        PartitionedCache(RandomCandidatesArray(256, 16, seed=0),
                         LRURanking(), scheme, 2, targets=[205, 51])
        expected = alpha_for_two_partitions(51 / 256, 0.9, 16)
        assert scheme.alphas[0] == pytest.approx(1.0)
        assert scheme.alphas[1] == pytest.approx(expected, rel=1e-4)

    def test_defaults_to_neutral_alphas(self):
        scheme = FutilityScalingScheme()
        PartitionedCache(SetAssociativeArray(64, 16), LRURanking(), scheme, 2)
        assert scheme.alphas == [1.0, 1.0]

    def test_set_alphas_validation(self):
        scheme = FutilityScalingScheme()
        PartitionedCache(SetAssociativeArray(64, 16), LRURanking(), scheme, 2)
        with pytest.raises(ConfigurationError):
            scheme.set_alphas([1.0])
        with pytest.raises(ConfigurationError):
            scheme.set_alphas([1.0, -2.0])
        scheme.set_alphas([1.0, 4.0])
        assert scheme.alphas == [1.0, 4.0]

    def test_alpha_count_mismatch_at_bind(self):
        scheme = FutilityScalingScheme(alphas=[1.0, 2.0, 3.0])
        with pytest.raises(ConfigurationError):
            PartitionedCache(SetAssociativeArray(64, 16), LRURanking(),
                             scheme, 2)

    def test_scaling_shrinks_the_scaled_partition(self):
        """With symmetric traffic, scaling partition 1's futility up must
        shrink it below its unscaled share (the core FS mechanism)."""
        scheme = FutilityScalingScheme(alphas=[1.0, 3.0])
        cache = PartitionedCache(RandomCandidatesArray(256, 16, seed=1),
                                 LRURanking(), scheme, 2)
        drive_two_partition(cache, 20_000)
        assert cache.actual_sizes[1] < 100 < cache.actual_sizes[0]

    def test_equation_one_alphas_enforce_targets(self):
        """Static alphas from Eq. (1) hold a 75/25 split under symmetric
        insertion (the Section IV steady-state claim)."""
        targets = [192, 64]
        alphas = (1.0, alpha_for_two_partitions(0.25, 0.5, 16))
        scheme = FutilityScalingScheme(alphas=alphas)
        cache = PartitionedCache(RandomCandidatesArray(256, 16, seed=2),
                                 LRURanking(), scheme, 2, targets=targets)
        drive_two_partition(cache, 40_000)
        assert cache.actual_sizes[1] == pytest.approx(64, abs=20)

    def test_full_candidate_list_always_used(self):
        """FS with equal alphas equals unpartitioned max-futility eviction:
        high associativity by construction (AEF near R/(R+1))."""
        scheme = FutilityScalingScheme(alphas=[1.0, 1.0])
        cache = PartitionedCache(RandomCandidatesArray(512, 16, seed=3),
                                 LRURanking(), scheme, 2)
        drive_two_partition(cache, 30_000)
        aefs = [cache.stats.aef(p) for p in range(2)]
        for aef in aefs:
            assert aef == pytest.approx(16 / 17, abs=0.02)


class TestFeedbackFS:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            FeedbackFutilityScalingScheme(interval_length=0)
        with pytest.raises(ConfigurationError):
            FeedbackFutilityScalingScheme(changing_ratio=1.0)
        with pytest.raises(ConfigurationError):
            FeedbackFutilityScalingScheme(max_level=0)

    def make_cache(self, scheme, targets=(192, 64)):
        cache = PartitionedCache(SetAssociativeArray(256, 16),
                                 CoarseTimestampLRURanking(), scheme, 2,
                                 targets=list(targets))
        return cache

    def test_levels_start_at_zero(self):
        scheme = FeedbackFutilityScalingScheme()
        self.make_cache(scheme)
        assert scheme.scaling_levels() == [0, 0]
        assert scheme.scaling_factors() == [1.0, 1.0]

    def test_level_raises_when_oversized_and_growing(self):
        scheme = FeedbackFutilityScalingScheme(interval_length=4)
        cache = self.make_cache(scheme, targets=(250, 6))
        # Flood partition 1 so it grows past its tiny target.
        for a in range(64):
            cache.access(10**9 + a, 1)
        assert scheme.scaling_levels()[1] > 0

    def test_level_saturates_at_max(self):
        scheme = FeedbackFutilityScalingScheme(interval_length=1, max_level=3)
        cache = self.make_cache(scheme, targets=(250, 6))
        for a in range(3000):
            cache.access(10**9 + a, 1)
        assert scheme.scaling_levels()[1] == 3
        assert scheme.scaling_factors()[1] == 8.0

    def test_interval_conditions_follow_algorithm_2(self):
        """White-box check of Algorithm 2's four (size error, trend)
        branches: the level moves only for (over & growing) and
        (under & shrinking)."""
        scheme = FeedbackFutilityScalingScheme(interval_length=4)
        cache = self.make_cache(scheme, targets=(128, 128))

        def elapse(actual, ins, evi):
            cache.actual_sizes[1] = actual
            scheme._ins[1], scheme._evi[1] = ins, evi
            scheme._interval_elapsed(1)
            return scheme._levels[1]

        scheme._levels[1] = 3
        assert elapse(actual=200, ins=4, evi=1) == 4   # over & growing: up
        assert elapse(actual=200, ins=1, evi=4) == 4   # over & shrinking: hold
        assert elapse(actual=50, ins=4, evi=1) == 4    # under & growing: hold
        assert elapse(actual=50, ins=1, evi=4) == 3    # under & shrinking: down
        # Counters reset after every interval.
        assert scheme._ins[1] == 0 and scheme._evi[1] == 0

    def test_level_frozen_without_partition_activity(self):
        """Algorithm 2 adjusts a partition's factor only when its own
        insertion/eviction counters elapse: an inactive partition's level
        stays frozen even if its size error changes."""
        scheme = FeedbackFutilityScalingScheme(interval_length=4)
        cache = self.make_cache(scheme, targets=(250, 6))
        for a in range(200):
            cache.access(10**9 + a, 1)
        level = scheme.scaling_levels()[1]
        assert level > 0
        cache.set_targets([6, 250])   # partition 1 now deeply undersized
        # Partition 0 traffic alone does not touch partition 1's level as
        # long as no partition-1 insertions or evictions occur.
        before_evi = cache.stats.evictions[1]
        for a in range(50):
            cache.access(a, 0)
        if cache.stats.evictions[1] == before_evi:
            assert scheme.scaling_levels()[1] == level

    def test_sizes_converge_to_targets(self):
        scheme = FeedbackFutilityScalingScheme()
        cache = self.make_cache(scheme, targets=(192, 64))
        drive_two_partition(cache, 40_000, space=3000)
        assert cache.actual_sizes[0] == pytest.approx(192, abs=30)
        assert cache.actual_sizes[1] == pytest.approx(64, abs=30)

    def test_smooth_resizing(self):
        """Changing targets mid-run requires no flush: the scheme simply
        steers sizes to the new targets (the smooth-resizing property)."""
        scheme = FeedbackFutilityScalingScheme()
        cache = self.make_cache(scheme, targets=(192, 64))
        drive_two_partition(cache, 20_000, space=3000, seed=1)
        cache.set_targets([64, 192])
        drive_two_partition(cache, 30_000, space=3000, seed=2)
        assert cache.stats.flushes == 0
        assert cache.actual_sizes[0] == pytest.approx(64, abs=30)
        assert cache.actual_sizes[1] == pytest.approx(192, abs=30)

    def test_hardware_register_ranges(self):
        """Levels must stay within the 3-bit ScalingShiftWidth register."""
        scheme = FeedbackFutilityScalingScheme()
        cache = self.make_cache(scheme, targets=(250, 6))
        drive_two_partition(cache, 30_000, p0_share=0.1, space=3000)
        for level in scheme.scaling_levels():
            assert 0 <= level <= 7

    def test_adjustment_recording(self):
        scheme = FeedbackFutilityScalingScheme(interval_length=2)
        scheme.record_adjustments = True
        cache = self.make_cache(scheme, targets=(250, 6))
        for a in range(100):
            cache.access(10**9 + a, 1)
        assert scheme.adjustments
        part, level = scheme.adjustments[0]
        assert part == 1 and level == 1

"""Fidelity of the coarse-timestamp LRU proxy against exact LRU.

The practical FS design rests on the 8-bit coarse timestamp ordering
approximating true recency order (Section V-A).  These tests pin down when
that holds: within the wrap horizon the coarse order never *inverts* exact
recency (it only coarsens it), and beyond the horizon aliasing is expected
and bounded.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.futility import (
    TIMESTAMP_MOD,
    CoarseTimestampLRURanking,
    LRURanking,
)


def fresh_pair(lines=32, parts=1, period_target=16):
    coarse = CoarseTimestampLRURanking()
    exact = LRURanking()
    coarse.bind(lines, parts)
    exact.bind(lines, parts)
    coarse.set_targets([period_target * coarse.period_fraction] * parts)
    exact.set_targets([period_target * 16] * parts)
    return coarse, exact


@given(ops=st.lists(st.integers(0, 7), min_size=2, max_size=120))
@settings(max_examples=60, deadline=None)
def test_property_coarse_order_never_inverts_exact_order(ops):
    """For any access sequence short enough to avoid wrap, if the coarse
    ranking says line A is strictly more futile than line B, exact LRU
    agrees (coarse ties are allowed; inversions are not)."""
    coarse, exact = fresh_pair(period_target=1)  # tick every access
    resident = set()
    for idx in ops:
        if idx in resident:
            coarse.on_hit(idx, 0)
            exact.on_hit(idx, 0)
        else:
            coarse.on_insert(idx, 0)
            exact.on_insert(idx, 0)
            resident.add(idx)
    lines = sorted(resident)
    for a in lines:
        for b in lines:
            if coarse.raw_futility(a) > coarse.raw_futility(b):
                assert exact.futility(a) > exact.futility(b)


def test_wrap_aliasing_is_the_documented_failure_mode():
    """A line idle for exactly TIMESTAMP_MOD ticks aliases to distance 0 —
    the hardware's known coarse-timestamp limitation."""
    coarse, _ = fresh_pair(period_target=1)
    coarse.on_insert(0, 0)
    coarse.on_insert(1, 0)   # one tick later
    for _ in range(TIMESTAMP_MOD - 2):
        coarse._tick(0)
    # Line 0 is now at distance 255 (maximal) ...
    assert coarse.raw_futility(0) == TIMESTAMP_MOD - 1
    coarse._tick(0)
    # ... and one more tick wraps it to 0: it looks freshest.
    assert coarse.raw_futility(0) == 0
    assert coarse.raw_futility(1) == TIMESTAMP_MOD - 1


def test_coarse_period_slows_ticks():
    """With K = target/16 accesses per tick, lines touched within the same
    period are indistinguishable (the 'coarse' in coarse-grain)."""
    coarse = CoarseTimestampLRURanking()
    coarse.bind(16, 1)
    coarse.set_targets([64])     # period = 4 accesses per tick
    # The first three inserts land before the counter completes a period.
    for idx in range(3):
        coarse.on_insert(idx, 0)
    distances = {coarse.raw_futility(i) for i in range(3)}
    assert len(distances) == 1
    # The fourth access completes the period: a tick separates it.
    coarse.on_insert(3, 0)
    assert coarse.raw_futility(3) != coarse.raw_futility(0)


def test_decision_agreement_under_churn():
    """Under realistic churn, coarse-TS and exact LRU pick the same victim
    from a 16-candidate list in the vast majority of replacements.

    The period must be sized to the partition as the hardware does
    (K = size/16): then the wrap horizon (256 * K accesses) far exceeds
    typical reuse intervals and aliasing is negligible.  (Sizing K to a
    fraction of the working set instead collapses agreement to ~10% —
    the coarse design's documented sensitivity.)"""
    rng = random.Random(3)
    coarse, exact = fresh_pair(lines=256, period_target=256)
    resident = []
    agreements = 0
    trials = 0
    for step in range(6000):
        if len(resident) < 256:
            idx = len(resident)
            coarse.on_insert(idx, 0)
            exact.on_insert(idx, 0)
            resident.append(idx)
            continue
        idx = rng.choice(resident)
        coarse.on_hit(idx, 0)
        exact.on_hit(idx, 0)
        if step % 10 == 0:
            candidates = rng.sample(resident, 16)
            pick_coarse = max(candidates, key=coarse.raw_futility)
            pick_exact = max(candidates, key=exact.futility)
            trials += 1
            # Count agreement on the *value class*: the exact pick must be
            # at the coarse pick's distance (ties in coarse space).
            if coarse.raw_futility(pick_exact) == \
                    coarse.raw_futility(pick_coarse):
                agreements += 1
    assert trials > 100
    assert agreements / trials > 0.95

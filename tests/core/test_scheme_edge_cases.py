"""Edge-case tests across schemes: degenerate targets, single partitions,
tie handling, and zero-traffic partitions."""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.base import make_scheme
from repro.core.schemes.vantage import VantageScheme


def drive(cache, accesses, parts=2, space=500, seed=0):
    rng = random.Random(seed)
    for _ in range(accesses):
        part = rng.randrange(parts)
        cache.access(part * 10**6 + rng.randrange(space), part)
    cache.check_invariants()
    return cache


@pytest.mark.parametrize("scheme_kind", ["pf", "cqvp", "fs", "fs-feedback",
                                         "vantage", "prism"])
def test_zero_target_partition(scheme_kind):
    """A partition with target 0 must be squeezed out, not crash.

    Static FS enforces sizes only through its scaling factors, so it gets
    an explicit large alpha for the zero-target partition; the adaptive
    schemes must manage on their own.
    """
    scheme = (make_scheme("fs", alphas=[1.0, 1000.0])
              if scheme_kind == "fs" else make_scheme(scheme_kind))
    cache = PartitionedCache(SetAssociativeArray(128, 8), LRURanking(),
                             scheme, 2, targets=[128, 0])
    drive(cache, 4000, seed=1)
    assert cache.actual_sizes[1] < 40


@pytest.mark.parametrize("scheme_kind", ["pf", "cqvp", "fs", "fs-feedback",
                                         "vantage", "prism",
                                         "unpartitioned"])
def test_single_partition_degenerates_to_plain_cache(scheme_kind):
    """With one partition every scheme is just a replacement policy; the
    cache must fill completely and keep serving hits."""
    cache = PartitionedCache(SetAssociativeArray(64, 8), LRURanking(),
                             make_scheme(scheme_kind), 1)
    drive(cache, 3000, parts=1, space=200, seed=2)
    assert cache.actual_sizes == [64]
    assert cache.stats.total_hits() > 0


@pytest.mark.parametrize("scheme_kind", ["pf", "fs-feedback"])
def test_silent_partition_is_not_evicted_when_undersized(scheme_kind):
    """A partition that stops inserting while below target keeps its lines
    under size-respecting schemes (no other partition is allowed to evict
    it while they are the oversized ones).  Static FS with neutral alphas
    is deliberately excluded: it provides no sizing force by itself."""
    cache = PartitionedCache(RandomCandidatesArray(128, 16, seed=1),
                             LRURanking(), make_scheme(scheme_kind), 2,
                             targets=[64, 64])
    for a in range(32):
        cache.access(a, 0)       # partition 0: 32 lines, then silence
    for a in range(5000):
        cache.access(10**6 + a, 1)
    assert cache.actual_sizes[0] == 32


def test_all_candidates_same_partition_tie():
    """Candidates all from one partition with identical coarse timestamps:
    a victim must still be chosen deterministically."""
    cache = PartitionedCache(SetAssociativeArray(8, 8),
                             CoarseTimestampLRURanking(),
                             make_scheme("fs-feedback"), 1)
    for a in range(8):
        cache.access(a, 0)
    cache.access(100, 0)
    assert sum(cache.stats.evictions) == 1
    cache.check_invariants()


def test_vantage_zero_target_partition_aperture():
    scheme = VantageScheme()
    cache = PartitionedCache(SetAssociativeArray(64, 8), LRURanking(),
                             scheme, 2, targets=[64, 0])
    # Zero scaled target: aperture saturates so the partition sheds
    # everything it touches.
    assert scheme.aperture(1) == scheme.max_aperture
    drive(cache, 2000, seed=3)


def test_prism_single_window_smaller_than_traffic():
    """A window of 1 refreshes the distribution on every eviction."""
    cache = PartitionedCache(SetAssociativeArray(64, 8), LRURanking(),
                             make_scheme("prism", window=1, seed=2), 2)
    drive(cache, 2000, seed=4)


def test_feedback_fs_with_max_level_one():
    cache = PartitionedCache(SetAssociativeArray(64, 8),
                             CoarseTimestampLRURanking(),
                             make_scheme("fs-feedback", max_level=1), 2,
                             targets=[48, 16])
    drive(cache, 3000, seed=5)
    assert all(level <= 1 for level in cache.scheme.scaling_levels())


def test_retarget_to_zero_then_back():
    """Targets can swing to an extreme and back without breaking state."""
    cache = PartitionedCache(SetAssociativeArray(128, 8), LRURanking(),
                             make_scheme("pf"), 2)
    drive(cache, 2000, seed=6)
    cache.set_targets([128, 0])
    drive(cache, 2000, seed=7)
    cache.set_targets([64, 64])
    drive(cache, 3000, seed=8)
    assert abs(cache.actual_sizes[0] - 64) < 20

"""Tests for the memory controller and NUCA bank models."""

import pytest

from repro.sim.config import TABLE_II, SystemConfig
from repro.sim.memory import MemoryController
from repro.sim.nuca import NUCAModel


class TestMemoryController:
    def test_zero_load_latency(self):
        mcu = MemoryController(TABLE_II)
        assert mcu.request(0.0) == pytest.approx(200.0)

    def test_spaced_requests_see_no_queueing(self):
        mcu = MemoryController(TABLE_II)
        assert mcu.request(0.0) == pytest.approx(200.0)
        assert mcu.request(100.0) == pytest.approx(200.0)

    def test_burst_queues_at_bandwidth_limit(self):
        """Back-to-back requests at t=0 serialize at 4 cycles per line."""
        mcu = MemoryController(TABLE_II)
        latencies = [mcu.request(0.0) for _ in range(4)]
        assert latencies == pytest.approx([200.0, 204.0, 208.0, 212.0])

    def test_queue_statistics(self):
        mcu = MemoryController(TABLE_II)
        for _ in range(10):
            mcu.request(0.0)
        assert mcu.requests == 10
        assert mcu.mean_queue_delay() == pytest.approx(
            sum(4.0 * k for k in range(10)) / 10)

    def test_mean_queue_delay_idle(self):
        assert MemoryController(TABLE_II).mean_queue_delay() == 0.0

    def test_utilization(self):
        mcu = MemoryController(TABLE_II)
        for t in range(10):
            mcu.request(float(t * 100))
        assert mcu.utilization(1000.0) == pytest.approx(0.04)
        assert mcu.utilization(0.0) == 0.0

    def test_bandwidth_scales_service_interval(self):
        fast = MemoryController(SystemConfig(memory_bandwidth_gbps=64.0))
        fast.request(0.0)
        assert fast.request(0.0) == pytest.approx(202.0)  # 2 cycles/line


class TestNUCA:
    def test_unloaded_latency(self):
        nuca = NUCAModel(TABLE_II)
        assert nuca.access(0, 0.0) == pytest.approx(12.0)  # 4 + 8

    def test_bank_interleaving(self):
        nuca = NUCAModel(TABLE_II)
        banks = {nuca.bank_of(a) for a in range(8)}
        assert banks == {0, 1, 2, 3}

    def test_same_bank_conflicts_queue(self):
        nuca = NUCAModel(TABLE_II)
        first = nuca.access(0, 0.0)
        second = nuca.access(4, 0.0)   # same bank (4 % 4 == 0)
        assert second == first + NUCAModel.BANK_OCCUPANCY

    def test_different_banks_no_conflict(self):
        nuca = NUCAModel(TABLE_II)
        assert nuca.access(0, 0.0) == nuca.access(1, 0.0)

    def test_queue_stats(self):
        nuca = NUCAModel(TABLE_II)
        assert nuca.mean_queue_delay() == 0.0
        nuca.access(0, 0.0)
        nuca.access(0, 0.0)
        assert nuca.accesses == 2
        assert nuca.mean_queue_delay() > 0.0

"""Tests for the Table II system configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import TABLE_II, SystemConfig, scaled_config


def test_table_ii_values():
    """The paper's exact Table II parameters."""
    assert TABLE_II.cores == 32
    assert TABLE_II.frequency_ghz == 2.0
    assert TABLE_II.l1_size_kb == 32
    assert TABLE_II.l1_ways == 4
    assert TABLE_II.l1_latency == 1
    assert TABLE_II.l2_size_mb == 8.0
    assert TABLE_II.l2_ways == 16
    assert TABLE_II.l2_access_latency == 8
    assert TABLE_II.l1_to_l2_latency == 4
    assert TABLE_II.l2_banks == 4
    assert TABLE_II.memory_latency == 200
    assert TABLE_II.memory_bandwidth_gbps == 32.0


def test_derived_geometry():
    assert TABLE_II.l2_lines == 131_072          # 8MB / 64B
    assert TABLE_II.l1_lines == 512              # 32KB / 64B
    assert TABLE_II.l2_hit_latency == 12


def test_memory_cycles_per_line():
    # 32 GB/s at 2 GHz = 16 B/cycle -> 4 cycles per 64B line.
    assert TABLE_II.memory_cycles_per_line == pytest.approx(4.0)


def test_describe_contains_table_rows():
    rows = TABLE_II.describe()
    assert set(rows) == {"Cores", "L1 $s", "L2 $", "MCU"}
    assert "32 cores" in rows["Cores"]
    assert "16-way" in rows["L2 $"]
    assert "200 cycles" in rows["MCU"]


def test_scaled_config():
    cfg = scaled_config(1.0, cores=8)
    assert cfg.l2_lines == 16_384
    assert cfg.cores == 8
    assert cfg.l2_ways == TABLE_II.l2_ways


def test_validation():
    with pytest.raises(ConfigurationError):
        SystemConfig(cores=0)
    with pytest.raises(ConfigurationError):
        SystemConfig(l2_size_mb=0)
    with pytest.raises(ConfigurationError):
        SystemConfig(memory_bandwidth_gbps=0)

"""Tests for the multiprogrammed trace-driven engine."""

import pytest

from repro.cache.arrays import FullyAssociativeArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking, OPTRanking
from repro.core.schemes.full_assoc import FullAssocScheme
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.core.schemes.unpartitioned import UnpartitionedScheme
from repro.errors import ConfigurationError
from repro.sim.config import TABLE_II
from repro.sim.engine import (
    MultiprogramSimulator,
    ThreadResult,
    simulate_single_thread,
)
from repro.trace.access import Trace


def single_cache(lines=64, partitions=1):
    return PartitionedCache(SetAssociativeArray(lines, 4), LRURanking(),
                            PartitioningFirstScheme(), partitions)


class TestValidation:
    def test_trace_partition_mismatch(self):
        with pytest.raises(ConfigurationError):
            MultiprogramSimulator(single_cache(partitions=2),
                                  [Trace([1])], TABLE_II)

    def test_instruction_limit_positive(self):
        with pytest.raises(ConfigurationError):
            MultiprogramSimulator(single_cache(), [Trace([1])],
                                  instruction_limit=0)

    def test_single_thread_needs_one_partition(self):
        with pytest.raises(ConfigurationError):
            simulate_single_thread(single_cache(partitions=2), Trace([1]))


class TestThreadResult:
    def test_metrics(self):
        r = ThreadResult(thread=0, instructions=1000, cycles=2000.0,
                         accesses=100, misses=25)
        assert r.ipc == 0.5
        assert r.mpki == 25.0
        assert r.miss_rate == 0.25

    def test_degenerate(self):
        r = ThreadResult(thread=0, instructions=0, cycles=0.0,
                         accesses=0, misses=0)
        assert r.ipc == 0.0
        assert r.mpki == 0.0
        assert r.miss_rate == 0.0


class TestSingleThreadTiming:
    def test_all_hit_trace_timing_exact(self):
        """One address accessed repeatedly: one miss then hits; cycles are
        exactly gaps*CPI + L2 latencies + one memory latency."""
        n = 10
        trace = Trace([7] * n, gaps=[100] * n)
        result = simulate_single_thread(single_cache(), trace)
        l2 = TABLE_II.l2_hit_latency
        expected = n * 100 + n * l2 + TABLE_II.memory_latency
        assert result.cycles == pytest.approx(expected)
        assert result.misses == 1
        assert result.instructions == n * 100

    def test_miss_heavy_trace_slower(self):
        hits = Trace([1] * 50, gaps=[20] * 50)
        misses = Trace(range(50), gaps=[20] * 50)
        ipc_hits = simulate_single_thread(single_cache(), hits).ipc
        ipc_misses = simulate_single_thread(single_cache(), misses).ipc
        assert ipc_hits > ipc_misses

    def test_instruction_limit_respected(self):
        trace = Trace([1, 2, 3], gaps=[10, 10, 10])
        result = simulate_single_thread(single_cache(), trace,
                                        instruction_limit=15)
        assert result.instructions >= 15
        assert result.accesses == 2


class TestMultiprogrammed:
    def test_all_threads_reported(self):
        cache = single_cache(lines=64, partitions=3)
        traces = [Trace(range(b, b + 50), gaps=[10] * 50)
                  for b in (0, 1000, 2000)]
        result = MultiprogramSimulator(cache, traces,
                                       instruction_limit=300).run()
        assert len(result.threads) == 3
        assert [t.thread for t in result.threads] == [0, 1, 2]
        assert all(t.instructions >= 300 for t in result.threads)
        assert result.total_cycles > 0

    def test_interference_lowers_ipc(self):
        """A thread sharing an unpartitioned cache with a streaming
        polluter must run slower than alone."""
        victim = Trace([i % 32 for i in range(400)], gaps=[30] * 400)
        polluter = Trace(range(10**6, 10**6 + 400), gaps=[5] * 400)

        alone = PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                                 UnpartitionedScheme(), 1)
        ipc_alone = simulate_single_thread(alone, victim).ipc

        shared = PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                                  UnpartitionedScheme(), 2)
        result = MultiprogramSimulator(shared, [victim, polluter],
                                       instruction_limit=6000).run()
        assert result.threads[0].ipc < ipc_alone

    def test_memory_bandwidth_couples_threads(self):
        """Two all-miss threads must finish later than one when the MCU
        channel is narrow enough to saturate (in-order cores space their
        misses ~200 cycles apart, so contention needs a slow channel)."""
        from repro.sim.config import SystemConfig
        slow_memory = SystemConfig(memory_bandwidth_gbps=1.0)  # 128 cyc/line
        mk = lambda base: Trace(range(base, base + 500), gaps=[5] * 500)
        one = MultiprogramSimulator(
            single_cache(lines=16, partitions=1), [mk(0)], slow_memory,
            instruction_limit=2000).run()
        two = MultiprogramSimulator(
            single_cache(lines=16, partitions=2), [mk(0), mk(10**6)],
            slow_memory, instruction_limit=2000).run()
        assert two.threads[0].cycles > one.threads[0].cycles

    def test_opt_ranking_supported(self):
        cache = PartitionedCache(FullyAssociativeArray(16), OPTRanking(),
                                 FullAssocScheme(), 1)
        trace = Trace([i % 40 for i in range(200)])
        result = MultiprogramSimulator(cache, [trace],
                                       instruction_limit=150).run()
        assert result.threads[0].accesses > 0

    def test_traces_wrap_until_limit(self):
        cache = single_cache()
        trace = Trace([1, 2], gaps=[10, 10])
        result = MultiprogramSimulator(cache, [trace],
                                       instruction_limit=200).run()
        assert result.threads[0].accesses == 20


class TestInEngineL1:
    def test_l1_absorbs_repeated_accesses(self):
        """With model_l1, a tight loop hits in the private L1 and the
        shared L2 sees almost nothing."""
        trace = Trace([i % 8 for i in range(400)], gaps=[10] * 400)
        cache = single_cache(lines=64)
        result = MultiprogramSimulator(cache, [trace],
                                       instruction_limit=4000,
                                       model_l1=True).run()
        # 8 cold L1 misses reach the L2; the rest hit in L1.
        assert cache.stats.accesses <= 16
        assert result.threads[0].misses == 8
        # 4000 instr + 392 L1-hit cycles + 8 * (L2 + memory) = 6088 cycles.
        assert result.threads[0].cycles == pytest.approx(6088.0)

    def test_l1_hits_cost_l1_latency(self):
        trace = Trace([5] * 10, gaps=[100] * 10)
        cache = single_cache(lines=64)
        result = MultiprogramSimulator(cache, [trace],
                                       instruction_limit=1000,
                                       model_l1=True).run()
        # 1 miss (nuca + memory) + 9 L1 hits at l1_latency each.
        expected = (10 * 100 + TABLE_II.l2_hit_latency
                    + TABLE_II.memory_latency + 9 * TABLE_II.l1_latency)
        assert result.threads[0].cycles == pytest.approx(expected)

    def test_without_l1_every_access_reaches_l2(self):
        trace = Trace([i % 8 for i in range(100)])
        cache = single_cache(lines=64)
        MultiprogramSimulator(cache, [trace],
                              instruction_limit=100).run()
        assert cache.stats.accesses == 100

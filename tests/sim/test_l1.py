"""Tests for the private L1 model and trace filtering."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.l1 import L1Cache, filter_through_l1
from repro.trace.access import Trace


class TestL1Cache:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            L1Cache(0, 4)
        with pytest.raises(ConfigurationError):
            L1Cache(10, 4)

    def test_hit_miss(self):
        l1 = L1Cache(16, 4)
        assert l1.access(1) is False
        assert l1.access(1) is True
        assert l1.hits == 1 and l1.misses == 1
        assert l1.hit_rate() == 0.5

    def test_lru_within_set(self):
        l1 = L1Cache(4, 4)  # one set, 4 ways
        for a in [1, 2, 3, 4]:
            l1.access(a)
        l1.access(1)        # refresh 1
        l1.access(5)        # evicts LRU = 2
        assert l1.access(2) is False
        assert l1.access(1) is True

    def test_empty_hit_rate(self):
        assert L1Cache(16, 4).hit_rate() == 0.0


class TestFilterThroughL1:
    def test_repeated_accesses_absorbed(self):
        trace = Trace([1, 1, 1, 2], gaps=[10, 10, 10, 10])
        filtered = filter_through_l1(trace, num_lines=16, ways=4)
        assert list(filtered.addresses) == [1, 2]
        # Instruction counts are preserved by merging gaps.
        assert filtered.instructions == 40
        assert list(filtered.gaps) == [10, 30]

    def test_streaming_passes_through(self):
        trace = Trace(range(100))
        filtered = filter_through_l1(trace, num_lines=16, ways=4)
        assert len(filtered) == 100

    def test_explicit_l1_instance(self):
        l1 = L1Cache(16, 4)
        filter_through_l1(Trace([1, 1]), l1)
        assert l1.hits == 1

"""Scenario engine: determinism, zero-event equivalence, churn fairness."""

import pytest

from repro import api
from repro.errors import ConfigurationError
from repro.sim.scenario import (
    PhaseShift,
    Reapportion,
    ScenarioScript,
    Tenant,
    TenantArrival,
    TenantDeparture,
    WorkloadSpec,
    apportion_by_shares,
    run_scenario,
)

LINES = 256
ACCESSES = 2_000


def _factory(scheme="fs-feedback"):
    def build(num_partitions):
        return api.build_cache(
            array=api.build_array("set-assoc", LINES, ways=8, seed=3),
            ranking="coarse-ts-lru", scheme=scheme,
            num_partitions=num_partitions)
    return build


def _two_tenants():
    return (Tenant("a", WorkloadSpec("loop", LINES // 2)),
            Tenant("b", WorkloadSpec("random", LINES // 2, seed=5)))


CHURN = ScenarioScript(
    initial=_two_tenants(),
    events=(
        TenantArrival(at=ACCESSES // 4,
                      tenant=Tenant("c", WorkloadSpec("loop", LINES // 3),
                                    share=2.0)),
        TenantDeparture(at=(3 * ACCESSES) // 5, name="b"),
        Reapportion(at=(4 * ACCESSES) // 5, shares=(("a", 3.0),)),
    ),
    total_accesses=ACCESSES)


# -- script validation --------------------------------------------------------

def test_events_must_be_ordered():
    with pytest.raises(ConfigurationError, match="ordered"):
        ScenarioScript(initial=_two_tenants(),
                       events=(PhaseShift(at=100, name="a",
                                          workload=WorkloadSpec("scan", 1)),
                               TenantDeparture(at=50, name="b")),
                       total_accesses=200)


def test_events_must_fit_the_run():
    with pytest.raises(ConfigurationError, match="beyond"):
        ScenarioScript(initial=_two_tenants(),
                       events=(TenantDeparture(at=500, name="b"),),
                       total_accesses=500)


def test_workloads_are_pure_functions_of_the_index():
    for spec in (WorkloadSpec("loop", 37), WorkloadSpec("scan", 1),
                 WorkloadSpec("random", 64, seed=9, offset=1000)):
        first = [spec.address(i) for i in range(200)]
        assert [spec.address(i) for i in range(200)] == first


# -- apportionment ------------------------------------------------------------

def test_apportion_exact_and_ordered():
    assert apportion_by_shares([1.0, 1.0], 256) == [128, 128]
    assert sum(apportion_by_shares([3.0, 1.0, 1.0], 257)) == 257
    assert apportion_by_shares([2.0, 1.0], 9) == [6, 3]


def test_apportion_enforces_minimum():
    out = apportion_by_shares([1000.0, 0.001], 64, minimum=1)
    assert out[1] >= 1
    assert sum(out) == 64


def test_apportion_rejects_impossible_minimum():
    with pytest.raises(ConfigurationError, match="minimum|each"):
        apportion_by_shares([1.0, 1.0, 1.0], 2)


# -- the zero-event guarantee -------------------------------------------------

def test_zero_event_scenario_equals_plain_loop():
    """An empty timeline is exactly the pre-lifecycle steady loop: same
    round-robin, same hits, and one lone initial retarget in the log."""
    script = ScenarioScript(initial=_two_tenants(),
                            total_accesses=ACCESSES)
    result = run_scenario(script, _factory(), baselines=False)

    cache = _factory()(2)
    cache.set_targets(apportion_by_shares([1.0, 1.0], LINES))
    tenants = [t.workload for t in _two_tenants()]
    hits = [0, 0]
    counts = [0, 0]
    for g in range(ACCESSES):
        tid = g % 2
        base = (tid + 1) * (1 << 40)
        if cache.access(base + tenants[tid].address(counts[tid]), tid):
            hits[tid] += 1
        counts[tid] += 1
    assert [t.hits for t in result.tenants] == hits
    assert [t.accesses for t in result.tenants] == counts
    assert result.final_occupancy == list(cache.actual_sizes)
    assert [row["event"] for row in result.lifecycle] == ["retarget"]


def test_scenario_is_deterministic():
    a = run_scenario(CHURN, _factory())
    b = run_scenario(CHURN, _factory())
    assert a.final_occupancy == b.final_occupancy
    assert [t.hits for t in a.tenants] == [t.hits for t in b.tenants]
    assert a.unfairness == b.unfairness
    assert a.lifecycle == b.lifecycle


# -- churn mechanics ----------------------------------------------------------

@pytest.mark.parametrize("scheme", ["fs", "fs-feedback", "vantage"])
def test_churn_scenario_end_to_end(scheme):
    result = run_scenario(CHURN, _factory(scheme))
    assert result.events_applied == 3
    by_name = {t.name: t for t in result.tenants}
    assert by_name["c"].arrived_at == ACCESSES // 4
    assert by_name["b"].departed_at == (3 * ACCESSES) // 5
    # Fairness triple present and sane.
    assert result.unfairness >= 1.0
    assert 0 < result.stp <= len(result.tenants)
    assert result.antt > 0
    for t in result.tenants:
        assert t.slowdown is not None and t.slowdown > 0
    # The departed tenant's partition is retired with target zero.
    assert result.final_targets[by_name["b"].part] == 0
    # Lifecycle rows are stamped with their global access index.
    events = [(row["event"], row.get("access")) for row in result.lifecycle]
    assert ("create", ACCESSES // 4) in events
    assert ("retire", (3 * ACCESSES) // 5) in events


def test_phase_shift_restarts_the_workload():
    script = ScenarioScript(
        initial=_two_tenants(),
        events=(PhaseShift(at=ACCESSES // 2, name="a",
                           workload=WorkloadSpec("loop", LINES // 2,
                                                 offset=10 * LINES)),),
        total_accesses=ACCESSES)
    result = run_scenario(script, _factory(), baselines=False)
    assert result.events_applied == 1
    assert result.tenant("a").accesses == ACCESSES // 2


def test_departed_tenant_cannot_be_addressed():
    script = ScenarioScript(
        initial=_two_tenants(),
        events=(TenantDeparture(at=100, name="b"),
                PhaseShift(at=200, name="b",
                           workload=WorkloadSpec("scan", 1))),
        total_accesses=400)
    with pytest.raises(ConfigurationError, match="not active"):
        run_scenario(script, _factory(), baselines=False)


def test_controller_reapportions_online():
    from repro.alloc import ReapportionController, UCPReapportionPolicy

    controller = ReapportionController(
        LINES, interval=250, granule=16, policy=UCPReapportionPolicy())
    result = run_scenario(CHURN, _factory(), controller=controller,
                          baselines=False)
    assert controller.epochs >= ACCESSES // 250
    assert controller.decisions > 0
    # Online decisions appear in the lifecycle log as retargets.
    retargets = [row for row in result.lifecycle
                 if row["event"] == "retarget"]
    assert len(retargets) > 3  # more than the share-driven ones alone

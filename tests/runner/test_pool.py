"""Worker-pool semantics: ordering, errors, interrupt resumption."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.runner import Cell, Progress, ResultCache, run_cells

from .helpers import (
    kill_after_cached,
    raise_configuration_error,
    raise_value_error,
    square_cells,
    touch_and_return,
)


class TestOrderingAndJobs:
    def test_sequential_matches_parallel(self):
        cells = square_cells(8)
        assert run_cells(cells, jobs=1) == run_cells(cells, jobs=2)

    def test_results_are_in_cell_order(self):
        assert run_cells(square_cells(5), jobs=4) == [0, 1, 4, 9, 16]

    def test_jobs_zero_means_cpu_count(self):
        assert run_cells(square_cells(2), jobs=0) == [0, 1]

    def test_empty_sweep(self):
        assert run_cells([], jobs=4) == []

    def test_progress_counts_every_cell(self, capsys):
        import sys

        run_cells(square_cells(3), progress=Progress(sys.stderr))
        err = capsys.readouterr().err
        assert "[squares 1/3]" in err
        assert "[squares 3/3]" in err


class TestErrorPropagation:
    def test_library_errors_unwrapped_parallel(self):
        cells = square_cells(2) + [
            Cell("t", ("boom",), raise_configuration_error, ("bad knob",))]
        with pytest.raises(ConfigurationError, match="bad knob"):
            run_cells(cells, jobs=2)

    def test_foreign_errors_wrapped(self):
        cells = [Cell("t", ("boom",), raise_value_error, ("oops",))]
        with pytest.raises(ValueError, match="oops"):
            run_cells(cells, jobs=1)
        with pytest.raises(WorkerError, match="oops"):
            run_cells(cells + square_cells(1), jobs=2)

    def test_library_errors_unwrapped_inline(self):
        cells = square_cells(2) + [
            Cell("t", ("boom",), raise_configuration_error, ("bad knob",))]
        with pytest.raises(ConfigurationError, match="bad knob"):
            run_cells(cells, jobs=1)

    def test_worker_error_lists_every_failed_cell(self):
        """A multi-failure sweep reports ALL failed cells, not just the
        first one the pool happened to surface."""
        cells = [
            Cell("t", ("a",), raise_value_error, ("first boom",)),
            Cell("t", (1,), raise_value_error, ("second boom",)),
        ] + square_cells(2)
        with pytest.raises(WorkerError) as excinfo:
            run_cells(cells, jobs=2)
        message = str(excinfo.value)
        assert "2 cell(s) failed" in message
        assert "t[a]: ValueError: first boom" in message
        assert "t[1]: ValueError: second boom" in message
        # The chain preserves a real underlying exception for debugging.
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_worker_error_chains_cause_parallel(self):
        cells = [Cell("t", ("boom",), raise_value_error, ("oops",))]
        with pytest.raises(WorkerError) as excinfo:
            run_cells(cells + square_cells(1), jobs=2)
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestResumeAfterInterrupt:
    def test_killed_worker_loses_only_its_cell(self, tmp_path):
        """Kill a worker mid-sweep; rerun must execute only the missing
        cell and still produce the full ordered result."""
        sentinels = tmp_path / "s"
        sentinels.mkdir()
        cache = ResultCache(tmp_path / "cache")
        good = [Cell("t", (i,), touch_and_return, (str(sentinels), f"c{i}", i))
                for i in range(3)]
        killer = Cell("t", (3,), kill_after_cached,
                      (str(tmp_path / "cache"), 3))

        with pytest.raises(WorkerError):
            run_cells(good + [killer], jobs=2, store=cache)
        # Every completed cell was persisted before the crash surfaced.
        assert len(cache) == 3

        # "Fix" the broken cell and rerun: only it may execute.
        for f in sentinels.iterdir():
            f.unlink()
        fixed = Cell("t", (3,), touch_and_return, (str(sentinels), "c3", 3))
        assert run_cells(good + [fixed], jobs=2, store=cache) == [0, 1, 2, 3]
        assert [f.name for f in sentinels.iterdir()] == ["c3"]

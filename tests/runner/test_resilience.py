"""Fault tolerance: retries, timeouts, keep-going sweeps, fault injection.

The deterministic fault-injection harness (:mod:`repro.runner.faults`)
drives most of these: a plan names exact cells and attempt numbers, so
every scenario either always recovers or always fails — no timing or
scheduling dependence — and chaos runs stay byte-identical to fault-free
runs.
"""

from __future__ import annotations

import sys

import pytest

from repro.errors import CellTimeoutError, ConfigurationError, WorkerError
from repro.runner import (
    FAULTS_ENV,
    CacheCorruptionWarning,
    Cell,
    FailedCell,
    Fault,
    FaultPlan,
    InjectedFaultError,
    Progress,
    ResultCache,
    RetryPolicy,
    cell_key,
    load_manifest,
    run_cells,
    write_manifest,
)
from repro.runner.faults import active_plan

from .helpers import (
    FlakyConfig,
    kill_after_cached,
    kill_once,
    raise_value_error,
    sleep_forever,
    square,
    square_cells,
    succeed_after,
)

#: Backoff fast enough for tests but still exercising the delay path.
FAST = {"backoff_base": 0.001, "backoff_cap": 0.01}


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Never inherit a fault plan from the invoking environment."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)


class TestRetryPolicy:
    def test_delay_is_deterministic_and_capped(self):
        policy = RetryPolicy(retries=5, backoff_base=0.05, backoff_cap=0.2)
        delays = [policy.delay(n) for n in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.2, 0.2]
        # A pure function of the attempt number: no jitter, ever.
        assert delays == [policy.delay(n) for n in range(1, 6)]

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError, match="cell_timeout"):
            RetryPolicy(cell_timeout=0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            RetryPolicy(backoff_base=-0.1)

    def test_loss_budget_never_zero(self):
        assert RetryPolicy(retries=0).loss_budget == 1
        assert RetryPolicy(retries=3).loss_budget == 3


class TestRetries:
    def test_transient_failure_recovers_inline(self, tmp_path):
        cells = [Cell("t", (0,), succeed_after, (str(tmp_path), "c0", 2, 7))]
        assert run_cells(cells, jobs=1, retries=2, **FAST) == [7]
        assert len(list(tmp_path.glob("c0.attempt*"))) == 3

    def test_transient_failure_recovers_in_pool(self, tmp_path):
        cells = square_cells(3) + [
            Cell("t", (0,), succeed_after, (str(tmp_path), "c0", 1, 7))]
        assert run_cells(cells, jobs=2, retries=1, **FAST) == [0, 1, 4, 7]
        assert len(list(tmp_path.glob("c0.attempt*"))) == 2

    def test_exhausted_retries_raise_raw_inline(self, tmp_path):
        cells = [Cell("t", (0,), succeed_after, (str(tmp_path), "c0", 9, 7))]
        with pytest.raises(ValueError, match="attempt 3"):
            run_cells(cells, jobs=1, retries=2, **FAST)
        assert len(list(tmp_path.glob("c0.attempt*"))) == 3

    def test_exhausted_retries_raise_worker_error_in_pool(self, tmp_path):
        cells = square_cells(2) + [
            Cell("t", (0,), succeed_after, (str(tmp_path), "c0", 9, 7))]
        with pytest.raises(WorkerError, match=r"t\[0\]: ValueError"):
            run_cells(cells, jobs=2, retries=1, **FAST)
        assert len(list(tmp_path.glob("c0.attempt*"))) == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_is_announced_on_stderr(self, tmp_path, capsys, jobs):
        cells = square_cells(2) + [
            Cell("t", (0,), succeed_after, (str(tmp_path), "c0", 1, 7))]
        run_cells(cells, jobs=jobs, retries=1, **FAST,
                  progress=Progress(sys.stderr))
        err = capsys.readouterr().err
        assert "t[0]: attempt 1 failed (ValueError" in err
        assert "retrying in" in err


class TestKeepGoing:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_completes_around_failed_cell(self, tmp_path, jobs):
        cache = ResultCache(tmp_path)
        cells = [
            Cell("t", (0,), square, (None, 3)),
            Cell("t", (1,), raise_value_error, ("broken",)),
            Cell("t", (2,), square, (None, 4)),
        ]
        results = run_cells(cells, jobs=jobs, store=cache, keep_going=True,
                            **FAST)
        assert results[0] == 9 and results[2] == 16
        failed = results[1]
        assert isinstance(failed, FailedCell)
        assert failed.index == 1
        assert failed.label == "t[1]"
        assert failed.error_type == "ValueError"
        assert failed.message == "broken"
        assert failed.attempts == 1
        assert isinstance(failed.exc, ValueError)
        # Every successful cell was persisted despite the failure.
        assert len(cache) == 2

    def test_failed_cell_counts_toward_progress(self, capsys):
        cells = [Cell("t", (0,), raise_value_error, ("broken",))] \
            + square_cells(1)
        run_cells(cells, jobs=1, keep_going=True,
                  progress=Progress(sys.stderr), **FAST)
        err = capsys.readouterr().err
        assert "t[0]: FAILED" in err
        assert "2/2" in err

    def test_keep_going_with_retries_records_attempts(self, tmp_path):
        cells = [Cell("t", (0,), succeed_after,
                      (str(tmp_path), "c0", 9, 7))]
        results = run_cells(cells, jobs=1, retries=2, keep_going=True, **FAST)
        assert results[0].attempts == 3


class TestTimeouts:
    def test_hung_cell_is_killed_and_failed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [Cell("t", (0,), square, (None, 3)),
                 Cell("t", ("hang",), sleep_forever, ())]
        results = run_cells(cells, jobs=2, store=cache, cell_timeout=0.5,
                            keep_going=True, **FAST)
        assert results[0] == 9
        failed = results[1]
        assert isinstance(failed, FailedCell)
        assert failed.error_type == "CellTimeoutError"
        assert "cell-timeout of 0.5s" in failed.message
        assert len(cache) == 1

    def test_timeout_raises_without_keep_going(self):
        cells = [Cell("t", ("hang",), sleep_forever, ())]
        # cell_timeout forces pool execution even at jobs=1: an inline
        # hung cell could never be killed.
        with pytest.raises(CellTimeoutError, match="cell-timeout"):
            run_cells(cells, jobs=1, cell_timeout=0.5, **FAST)


class TestPoolRecovery:
    def test_killed_worker_cell_retries_on_respawned_pool(self, tmp_path):
        """A worker death implicates the in-flight cell once; after the
        pool respawns, the cell reruns and the sweep completes."""
        cells = square_cells(3) + [
            Cell("t", ("k",), kill_once, (str(tmp_path), "k", 42))]
        assert run_cells(cells, jobs=2, **FAST) == [0, 1, 4, 42]

    def test_repeat_killer_fails_with_worker_error(self, tmp_path):
        """A cell that keeps killing its worker exhausts the loss budget
        instead of respawning forever.  The killer waits for its peers'
        cache entries, so it is the only cell in flight at each break."""
        cache = ResultCache(tmp_path)
        cells = square_cells(3) + [
            Cell("t", ("k",), kill_after_cached, (str(tmp_path), 3))]
        with pytest.raises(WorkerError, match="worker pool broke"):
            run_cells(cells, jobs=2, store=cache, **FAST)
        # The innocent cells all completed and were persisted.
        assert len(cache) == 3

    def test_repeat_killer_as_failed_cell_under_keep_going(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = square_cells(2) + [
            Cell("t", ("k",), kill_after_cached, (str(tmp_path), 2))]
        results = run_cells(cells, jobs=2, store=cache, keep_going=True,
                            **FAST)
        assert results[:2] == [0, 1]
        assert isinstance(results[2], FailedCell)
        assert results[2].error_type == "WorkerError"


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan((
            Fault(cell="fig3[0.6]", kind="raise", attempts=(1, 2)),
            Fault(cell="fig3[0.7]", kind="hang", seconds=1.5),
            Fault(cell="fig3[0.8]", kind="corrupt"),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_triggers_by_label_and_attempt(self):
        fault = Fault(cell="t[0]", kind="raise", attempts=(2,))
        assert fault.triggers("t[0]", 2)
        assert not fault.triggers("t[0]", 1)
        assert not fault.triggers("t[1]", 2)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            Fault(cell="t[0]", kind="explode")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault fields"):
            FaultPlan.from_json(
                '{"faults": [{"cell": "t[0]", "kind": "raise", "when": 1}]}')

    def test_rejects_malformed_json(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_active_plan_from_env(self, monkeypatch):
        assert active_plan() is None
        plan = FaultPlan((Fault(cell="t[0]", kind="raise"),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert active_plan() == plan

    def test_active_plan_from_file(self, monkeypatch, tmp_path):
        plan = FaultPlan((Fault(cell="t[0]", kind="kill"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULTS_ENV, f"@{path}")
        assert active_plan() == plan
        monkeypatch.setenv(FAULTS_ENV, f"@{tmp_path / 'absent.json'}")
        with pytest.raises(ConfigurationError, match="cannot read"):
            active_plan()


class TestFaultInjection:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_injected_raise_recovers_with_retry(self, monkeypatch, jobs):
        plan = FaultPlan((Fault(cell="squares[1]", kind="raise"),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert run_cells(square_cells(3), jobs=jobs, retries=1,
                         **FAST) == [0, 1, 4]

    def test_injected_raise_without_retry_fails(self, monkeypatch):
        plan = FaultPlan((Fault(cell="squares[1]", kind="raise"),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        with pytest.raises(InjectedFaultError):
            run_cells(square_cells(3), jobs=1)

    def test_injected_kill_recovers_via_pool_respawn(self, monkeypatch):
        plan = FaultPlan((Fault(cell="squares[1]", kind="kill",
                                attempts=(1,)),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert run_cells(square_cells(3), jobs=2, **FAST) == [0, 1, 4]

    def test_injected_hang_recovers_via_timeout(self, monkeypatch):
        plan = FaultPlan((Fault(cell="squares[1]", kind="hang",
                                seconds=30.0, attempts=(1,)),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert run_cells(square_cells(3), jobs=2, retries=1,
                         cell_timeout=0.5, **FAST) == [0, 1, 4]

    def test_injected_corruption_quarantines_and_recomputes(
            self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path)
        cells = square_cells(2)
        assert run_cells(cells, store=cache) == [0, 1]
        plan = FaultPlan((Fault(cell="squares[0]", kind="corrupt"),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        with pytest.warns(CacheCorruptionWarning, match="quarantined"):
            assert run_cells(cells, store=cache) == [0, 1]
        path = cache.path_for(cell_key(cells[0]))
        assert path.exists()  # recomputed and rewritten
        assert path.with_name(path.name + ".corrupt").exists()


class TestManifest:
    def _failures(self):
        return [
            FailedCell(index=2, label="t[2]", key="b" * 64,
                       error_type="ValueError", message="late",
                       attempts=3, elapsed=1.25),
            FailedCell(index=0, label="t[0]", key="a" * 64,
                       error_type="CellTimeoutError", message="early",
                       attempts=1, elapsed=0.5),
        ]

    def test_round_trip_sorted_by_index(self, tmp_path):
        path = write_manifest(tmp_path / "failures" / "t.json", "t",
                              self._failures())
        doc = load_manifest(path)
        assert doc["manifest_version"] == 1
        assert doc["experiment"] == "t"
        assert [f["cell"] for f in doc["failures"]] == ["t[0]", "t[2]"]
        entry = doc["failures"][1]
        assert entry == {"cell": "t[2]", "key": "b" * 64, "index": 2,
                         "error_type": "ValueError", "message": "late",
                         "attempts": 3, "elapsed": 1.25}

    def test_empty_manifest_is_meaningful(self, tmp_path):
        path = write_manifest(tmp_path / "t.json", "t", [])
        assert load_manifest(path)["failures"] == []

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a failure"):
            load_manifest(path)


def _flaky_cells(config):
    return [
        Cell("figflaky", (0,), square, (config, 2)),
        Cell("figflaky", (1,), raise_value_error, ("permanently broken",)),
        Cell("figflaky", (2,), square, (config, 3)),
    ]


class TestCliChaos:
    """End-to-end: the CLI under an injected fault storm."""

    def test_chaos_fig3_is_byte_identical(self, monkeypatch, tmp_path,
                                          capsys):
        """A fig3 sweep hit by a transient exception, a worker kill and a
        corrupted cache entry — run with ``--keep-going --retries 2`` —
        completes with an empty manifest and stdout byte-identical to a
        fault-free ``--jobs 1`` run."""
        from repro.experiments.__main__ import main
        from repro.experiments.registry import get_experiment

        baseline_dir = tmp_path / "baseline"
        chaos_dir = tmp_path / "chaos"
        assert main(["fig3", "--jobs", "1",
                     "--cache-dir", str(baseline_dir)]) == 0
        baseline = capsys.readouterr().out

        # Seed the chaos cache fully, then knock out two entries so the
        # raise/kill faults hit genuinely executing cells while
        # fig3[0.9] stays served from the cache.
        assert main(["fig3", "--jobs", "1",
                     "--cache-dir", str(chaos_dir)]) == 0
        capsys.readouterr()
        spec = get_experiment("fig3")
        cache = ResultCache(chaos_dir)
        cells = {c.label: c for c in spec.cells(spec.config("scaled"))}
        assert set(cells) == {"fig3[0.6]", "fig3[0.7]",
                              "fig3[0.8]", "fig3[0.9]"}
        for label in ("fig3[0.6]", "fig3[0.7]"):
            cache.path_for(cell_key(cells[label])).unlink()

        plan = FaultPlan((
            Fault(cell="fig3[0.6]", kind="raise", attempts=(1,)),
            Fault(cell="fig3[0.7]", kind="kill", attempts=(1,)),
            Fault(cell="fig3[0.8]", kind="corrupt"),
        ))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        with pytest.warns(CacheCorruptionWarning):
            rc = main(["fig3", "--jobs", "2", "--keep-going",
                       "--retries", "2", "--cache-dir", str(chaos_dir)])
        assert rc == 0
        chaos = capsys.readouterr()
        assert chaos.out == baseline
        doc = load_manifest(chaos_dir / "failures" / "fig3.json")
        assert doc["failures"] == []

    def test_permanent_failure_names_cell_and_keeps_the_rest(
            self, tmp_path, capsys):
        """Under ``--keep-going`` a permanently failing cell exits 1, the
        manifest names exactly that cell, and every other cell's result
        is in the cache."""
        from repro.experiments.__main__ import main
        from repro.experiments.registry import register_experiment, unregister

        register_experiment(name="figflaky", config_cls=FlakyConfig,
                            reduce=lambda config, results: results,
                            format=str)(_flaky_cells)
        cache_dir = tmp_path / "cache"
        try:
            rc = main(["figflaky", "--scale", "smoke", "--jobs", "2",
                       "--keep-going", "--retries", "1",
                       "--cache-dir", str(cache_dir)])
        finally:
            unregister("figflaky")
        assert rc == 1
        captured = capsys.readouterr()
        assert captured.out == ""  # no partial table on stdout
        assert ("figflaky[1] failed after 2 attempt(s): "
                "ValueError: permanently broken") in captured.err
        assert "rerun the same command" in captured.err

        doc = load_manifest(cache_dir / "failures" / "figflaky.json")
        assert [f["cell"] for f in doc["failures"]] == ["figflaky[1]"]
        assert doc["failures"][0]["attempts"] == 2
        # Both healthy cells were computed and persisted.
        assert len(list(cache_dir.rglob("*.pkl"))) == 2

    def test_resilience_flags_accept_clean_run(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3", "--scale", "smoke", "--no-cache",
                     "--retries", "2", "--cell-timeout", "120",
                     "--keep-going"]) == 0
        assert "alpha_2" in capsys.readouterr().out

"""Parallel runs must be byte-identical to sequential runs.

The ISSUE acceptance criterion: figure output for ``--jobs 2`` matches
``--jobs 1`` exactly, and a fully cached rerun reproduces it again.
"""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


def _stdout(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.mark.parametrize("fig", ["fig3", "fig5"])
def test_jobs2_byte_identical_to_jobs1(fig, capsys, tmp_path):
    base = [fig, "--scale", "smoke", "--cache-dir", str(tmp_path)]
    sequential = _stdout(capsys, base + ["--jobs", "1", "--force"])
    parallel = _stdout(capsys, base + ["--jobs", "2", "--force"])
    assert parallel == sequential

    # Third run is served entirely from the cache and must still match.
    cached = _stdout(capsys, base + ["--jobs", "2"])
    assert cached == sequential


def test_no_cache_matches_cached(capsys, tmp_path):
    base = ["fig5", "--scale", "smoke"]
    uncached = _stdout(capsys, base + ["--no-cache"])
    cached = _stdout(capsys, base + ["--cache-dir", str(tmp_path)])
    assert uncached == cached

"""Module-level cell functions for runner tests.

Cells are pickled by reference into worker processes, so test cell
bodies must live at module scope (not inside test functions).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.runner import Cell


def square(config, x):
    return x * x


def touch_and_return(sentinel_dir, name, value):
    """Record that this cell executed, then return ``value``."""
    Path(sentinel_dir, name).write_text("ran")
    return value


def raise_value_error(message):
    raise ValueError(message)


def raise_configuration_error(message):
    from repro.errors import ConfigurationError
    raise ConfigurationError(message)


def kill_after_peers(sentinel_dir, peers):
    """Wait until every peer cell has recorded execution, then die hard
    (simulating a worker killed mid-sweep)."""
    deadline = time.time() + 30
    while time.time() < deadline:
        if all(Path(sentinel_dir, p).exists() for p in peers):
            break
        time.sleep(0.01)
    os.kill(os.getpid(), signal.SIGKILL)


def kill_after_cached(cache_root, count):
    """Die hard once the parent has persisted ``count`` cache entries.

    Polling the cache (not execution sentinels) makes the interrupt test
    deterministic: peers' results are on disk, not merely in flight."""
    deadline = time.time() + 30
    while time.time() < deadline:
        if len(list(Path(cache_root).rglob("*.pkl"))) >= count:
            break
        time.sleep(0.01)
    os.kill(os.getpid(), signal.SIGKILL)


def square_cells(n, config=None):
    return [Cell("squares", (i,), square, (config, i)) for i in range(n)]


def succeed_after(sentinel_dir, name, failures, value):
    """Raise ``ValueError`` on the first ``failures`` calls, then return
    ``value``.  Attempts are counted with marker files so the count
    survives process boundaries (each retry may land in a fresh worker)."""
    attempt = len(list(Path(sentinel_dir).glob(f"{name}.attempt*"))) + 1
    Path(sentinel_dir, f"{name}.attempt{attempt}").write_text("tried")
    if attempt <= failures:
        raise ValueError(f"{name}: transient failure on attempt {attempt}")
    return value


def sleep_forever():
    """Hang well past any test's per-cell timeout."""
    time.sleep(600)


def kill_once(sentinel_dir, name, value):
    """Die hard on the first call, return ``value`` on the retry."""
    marker = Path(sentinel_dir, f"{name}.killed")
    if not marker.exists():
        marker.write_text("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


@dataclass(frozen=True)
class FlakyConfig:
    """Config for CLI-registered test experiments (picklable, with the
    scale constructors the registry expects)."""

    n: int = 3

    @classmethod
    def smoke(cls):
        return cls(n=3)

    scaled = paper = smoke

"""Content-addressed cell cache: key canonicalization and storage."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    CacheCorruptionWarning,
    Cell,
    ResultCache,
    canonical_encode,
    cell_key,
    default_cache_dir,
    run_cells,
)
from repro.runner.cache import CACHE_MAGIC

from .helpers import square, touch_and_return


@dataclass(frozen=True)
class DemoConfig:
    lines: int = 128
    splits: tuple = ((0.9, 0.1), (0.5, 0.5))
    name: str = "demo"
    flag: bool = True


def demo_cell(x: int = 3) -> Cell:
    return Cell("demo", ("a", x), square, (DemoConfig(), x))


class TestCanonicalEncode:
    def test_primitives_pass_through(self):
        assert canonical_encode(3) == 3
        assert canonical_encode(0.5) == 0.5
        assert canonical_encode("s") == "s"
        assert canonical_encode(None) is None
        assert canonical_encode(True) is True

    def test_tuples_and_lists_equivalent(self):
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_dict_keys_sorted(self):
        enc = canonical_encode({"b": 1, "a": 2})
        assert list(enc) == ["a", "b"]

    def test_dataclass_includes_type_and_fields(self):
        enc = canonical_encode(DemoConfig())
        assert "DemoConfig" in enc["__dataclass__"]
        assert enc["fields"]["lines"] == 128
        assert enc["fields"]["splits"] == [[0.9, 0.1], [0.5, 0.5]]

    def test_unsupported_type_raises(self):
        with pytest.raises(ConfigurationError):
            canonical_encode(object())
        with pytest.raises(ConfigurationError):
            canonical_encode({1: "non-string key"})


class TestCellKey:
    def test_stable_within_process(self):
        assert cell_key(demo_cell()) == cell_key(demo_cell())

    def test_stable_across_processes(self):
        """The key must be reproducible in a different interpreter —
        resumption depends on it."""
        with ProcessPoolExecutor(max_workers=1) as ex:
            child_key = ex.submit(cell_key, demo_cell()).result()
        assert child_key == cell_key(demo_cell())

    def test_sensitive_to_config(self):
        a = Cell("demo", ("a", 3), square, (DemoConfig(lines=128), 3))
        b = Cell("demo", ("a", 3), square, (DemoConfig(lines=256), 3))
        assert cell_key(a) != cell_key(b)

    def test_sensitive_to_salt(self):
        key = cell_key(demo_cell())
        assert cell_key(demo_cell(), salt="other") != key

    def test_sensitive_to_function(self):
        a = Cell("demo", ("a", 3), square, (DemoConfig(), 3))
        b = Cell("demo", ("a", 3), touch_and_return, (DemoConfig(), 3))
        assert cell_key(a) != cell_key(b)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(demo_cell())
        assert cache.get(key) == (False, None)
        cache.put(key, {"x": [1, 2, 3]})
        assert key in cache
        assert cache.get(key) == (True, {"x": [1, 2, 3]})
        assert len(cache) == 1

    def test_corrupt_entry_warns_and_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(demo_cell())
        cache.put(key, "value")
        path = cache.path_for(key)
        path.write_bytes(b"\x80truncated garbage")
        with pytest.warns(CacheCorruptionWarning, match="quarantined"):
            assert cache.get(key) == (False, None)
        # The bad bytes were moved aside for inspection, not deleted.
        assert not path.exists()
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.read_bytes() == b"\x80truncated garbage"
        assert len(cache) == 0
        # The quarantined entry does not shadow a fresh write.
        cache.put(key, "value")
        assert cache.get(key) == (True, "value")

    def test_checksum_mismatch_is_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(demo_cell())
        cache.put(key, [1, 2, 3])
        path = cache.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit; the header stays valid
        path.write_bytes(bytes(blob))
        with pytest.warns(CacheCorruptionWarning, match="checksum mismatch"):
            assert cache.get(key) == (False, None)
        assert path.with_name(path.name + ".corrupt").exists()

    def test_unpicklable_payload_is_quarantined(self, tmp_path):
        """A payload that passes the checksum but fails to unpickle is
        still corruption, not a crash."""
        import hashlib

        cache = ResultCache(tmp_path)
        key = cell_key(demo_cell())
        payload = b"definitely not a pickle"
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(CACHE_MAGIC + digest + b"\n" + payload)
        with pytest.warns(CacheCorruptionWarning, match="unpickle"):
            assert cache.get(key) == (False, None)
        assert path.with_name(path.name + ".corrupt").exists()

    def test_missing_entry_is_a_silent_miss(self, tmp_path, recwarn):
        cache = ResultCache(tmp_path)
        assert cache.get(cell_key(demo_cell())) == (False, None)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, CacheCorruptionWarning)]

    def test_corrupt_entry_triggers_recompute(self, tmp_path):
        """run_cells treats a corrupt entry as a miss: the cell reruns
        and the fresh result overwrites the quarantined one."""
        sentinels = tmp_path / "s"
        sentinels.mkdir()
        cache = ResultCache(tmp_path / "cache")
        cells = [Cell("t", (0,), touch_and_return,
                      (str(sentinels), "c0", 41))]
        assert run_cells(cells, store=cache) == [41]
        key = cell_key(cells[0])
        cache.path_for(key).write_bytes(b"garbage")
        (sentinels / "c0").unlink()
        with pytest.warns(CacheCorruptionWarning):
            assert run_cells(cells, store=cache) == [41]
        assert (sentinels / "c0").exists()  # really re-executed
        assert cache.get(key) == (True, 41)

    def test_purge(self, tmp_path):
        cache = ResultCache(tmp_path)
        for x in range(3):
            cache.put(cell_key(demo_cell(x)), x)
        result = cache.purge()
        assert result.entries == 3
        assert result.quarantined == 0
        assert result.total == 3
        assert len(cache) == 0

    def test_purge_removes_quarantined_entries(self, tmp_path):
        """purge() deletes quarantined *.pkl.corrupt files too, and
        reports them separately from live entries."""
        cache = ResultCache(tmp_path)
        keep = cell_key(demo_cell(0))
        bad = cell_key(demo_cell(1))
        cache.put(keep, 0)
        cache.put(bad, 1)
        cache.path_for(bad).write_bytes(b"garbage")
        with pytest.warns(CacheCorruptionWarning):
            cache.get(bad)
        corrupt = cache.path_for(bad).with_name(
            cache.path_for(bad).name + ".corrupt")
        assert corrupt.exists()
        result = cache.purge()
        assert result == (1, 1)  # one live entry, one quarantined
        assert result.total == 2
        assert not corrupt.exists()
        assert len(cache) == 0
        assert cache.quarantined_count() == 0

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestCacheShortCircuit:
    def test_hit_skips_execution(self, tmp_path):
        sentinels = tmp_path / "s"
        sentinels.mkdir()
        cache = ResultCache(tmp_path / "cache")
        cells = [Cell("t", (i,), touch_and_return,
                      (str(sentinels), f"c{i}", i)) for i in range(3)]
        assert run_cells(cells, store=cache) == [0, 1, 2]
        # Wipe the execution record; a cached rerun must not recreate it.
        for f in sentinels.iterdir():
            f.unlink()
        assert run_cells(cells, store=cache) == [0, 1, 2]
        assert list(sentinels.iterdir()) == []

    def test_force_reexecutes(self, tmp_path):
        sentinels = tmp_path / "s"
        sentinels.mkdir()
        cache = ResultCache(tmp_path / "cache")
        cells = [Cell("t", (0,), touch_and_return,
                      (str(sentinels), "c0", 7))]
        run_cells(cells, store=cache)
        (sentinels / "c0").unlink()
        assert run_cells(cells, store=cache, force=True) == [7]
        assert (sentinels / "c0").exists()

"""RunConfig and the legacy-keyword deprecation shim."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner import Cell, ResultCache, RunConfig, run_cells
from repro.runner.config import coerce_run_config
from repro.runner.resilience import RetryPolicy
from repro.store import LocalFileStore

from .helpers import square


class TestRunConfig:
    def test_defaults_run_inline_without_a_store(self):
        cfg = RunConfig()
        assert cfg.jobs == 1
        assert cfg.store is None
        assert cfg.open_store() is None
        assert cfg.policy() == RetryPolicy()

    def test_policy_mirrors_resilience_fields(self):
        cfg = RunConfig(retries=2, backoff_base=0.1, backoff_cap=1.0,
                        cell_timeout=5.0, keep_going=True)
        assert cfg.policy() == RetryPolicy(
            retries=2, backoff_base=0.1, backoff_cap=1.0,
            cell_timeout=5.0, keep_going=True)

    def test_store_field_accepts_url_path_and_instance(self, tmp_path):
        by_url = RunConfig(store=f"local:{tmp_path}/a").open_store()
        assert isinstance(by_url, LocalFileStore)
        by_path = RunConfig(store=tmp_path / "b").open_store()
        assert isinstance(by_path, LocalFileStore)
        inst = LocalFileStore(tmp_path / "c")
        assert RunConfig(store=inst).open_store() is inst

    def test_replace_returns_a_modified_copy(self):
        cfg = RunConfig(jobs=2)
        other = cfg.replace(retries=3)
        assert other.jobs == 2
        assert other.retries == 3
        assert cfg.retries == 0  # original untouched (frozen)

    def test_invalid_resilience_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig(retries=-1)
        with pytest.raises(ConfigurationError):
            RunConfig(cell_timeout=0)

    def test_queue_fields_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="queue_workers"):
            RunConfig(store=tmp_path, queue_workers=0)
        with pytest.raises(ConfigurationError, match="queue_lease"):
            RunConfig(store=tmp_path, queue_workers=1, queue_lease=0.0)
        with pytest.raises(ConfigurationError, match="requires a"):
            RunConfig(queue_workers=2)  # no store to hand results through


class TestCoerceRunConfig:
    def test_config_passes_through_unchanged(self):
        cfg = RunConfig(jobs=4)
        assert coerce_run_config(cfg, {}, where="t") is cfg

    def test_no_arguments_yield_defaults(self, recwarn):
        assert coerce_run_config(None, {}, where="t") == RunConfig()
        assert len(recwarn.list) == 0

    def test_legacy_kwargs_warn_once_and_map(self, tmp_path):
        store = LocalFileStore(tmp_path)
        with pytest.warns(DeprecationWarning,
                          match="pass a RunConfig") as rec:
            cfg = coerce_run_config(
                None, {"jobs": 3, "store": store, "retries": 1}, where="t")
        assert len(rec.list) == 1  # a single warning per call
        assert cfg.jobs == 3
        assert cfg.store is store
        assert cfg.retries == 1

    def test_removed_cache_alias_is_an_error(self, tmp_path):
        """The cache= -> store= deprecation cycle is over: passing
        cache= now fails fast, naming the replacement field."""
        store = LocalFileStore(tmp_path)
        with pytest.raises(TypeError,
                           match="cache= was renamed to store="):
            coerce_run_config(None, {"jobs": 3, "cache": store}, where="t")

    def test_mixing_styles_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            coerce_run_config(RunConfig(), {"jobs": 2}, where="t")

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="workers"):
            coerce_run_config(None, {"workers": 2}, where="t")


class TestRunnerEntryPoints:
    def cells(self, n=3):
        return [Cell("t", (i,), square, (None, i)) for i in range(n)]

    def test_run_cells_accepts_run_config(self, tmp_path, recwarn):
        cfg = RunConfig(store=LocalFileStore(tmp_path))
        assert run_cells(self.cells(), cfg) == [0, 1, 4]
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_run_cells_legacy_kwargs_still_work(self, tmp_path):
        store = LocalFileStore(tmp_path)
        with pytest.warns(DeprecationWarning, match="repro.runner.run_cells"):
            assert run_cells(self.cells(), store=store) == [0, 1, 4]
        # The legacy run populated the store under the new protocol.
        assert len(store) == 3

    def test_run_cells_rejects_removed_cache_alias(self, tmp_path):
        with pytest.raises(TypeError, match="cache= was renamed"):
            run_cells(self.cells(), cache=LocalFileStore(tmp_path))

    def test_experiment_run_accepts_run_config(self, capsys):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("fig3")
        legacy = spec.run(spec.config("smoke"), jobs=1)
        capsys.readouterr()
        modern = spec.run(spec.config("smoke"),
                          run_config=RunConfig(jobs=1))
        assert modern == legacy


class TestResultCacheShim:
    def test_is_a_deprecated_local_store(self, tmp_path):
        with pytest.warns(DeprecationWarning,
                          match="use repro.store.LocalFileStore"):
            cache = ResultCache(tmp_path)
        assert isinstance(cache, LocalFileStore)
        key = "0" * 64
        cache.put(key, 1)
        # A LocalFileStore on the same root reads the same entries.
        assert LocalFileStore(tmp_path).get(key) == (True, 1)

"""Chaos runs: the worker fleet under injected faults, byte for byte.

The acceptance bar for the resilience layer: a fig3 sweep executed by
queue workers under store fault injection, a cell slower than its
lease, and a broken store prints exactly the bytes a fault-free
``--jobs 1`` run prints — or fails loudly with the right exit code.

The heartbeat distinction, asserted both ways:

* renewal **on** (the default): the slow cell's lease is renewed while
  it runs, so ``steals == 0`` and ``renewals >= 1``;
* renewal **off** (``--queue-renew-interval 0``): the idle worker
  steals the expired lease and re-executes the cell, so
  ``steals > 0`` — and the output *still* matches, because cells are
  deterministic and delivery is at-least-once.
"""

from __future__ import annotations

import json

from repro.experiments.__main__ import main
from repro.runner.faults import FAULTS_ENV
from repro.runner.worker import EXIT_STORE_PERMANENT
from repro.runner.worker import main as worker_main
from repro.store import open_store
from repro.store.faults import STORE_FAULTS_ENV

#: One fig3 cell sleeps well past the 0.4 s lease used below.
SLOW_CELL_PLAN = json.dumps({"faults": [
    {"cell": "fig3[0.6]", "kind": "hang", "seconds": 2.0}]})

#: Every third store/queue call hits lock contention, claims see extra
#: latency, and each worker's first result write is torn mid-blob.
NOISY_STORE_PLAN = json.dumps({"faults": [
    {"op": "*", "kind": "busy", "every": 3},
    {"op": "claim", "kind": "latency", "seconds": 0.01},
    {"op": "put", "kind": "torn", "times": 1}]})

#: Workers die permanently on their first claim; the coordinator —
#: which never claims — keeps running and must notice.
BROKEN_STORE_PLAN = json.dumps({"faults": [
    {"op": "claim", "kind": "fatal"}]})


def baseline_stdout(tmp_path, capsys):
    assert main(["fig3", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "baseline")]) == 0
    return capsys.readouterr().out


def queue_totals(url):
    """(sum of renewals, sum of losses) over the fig3 queue."""
    store = open_store(url)
    try:
        states = store.make_queue("fig3").snapshot()
        return (sum(s.renewals for s in states.values()),
                sum(s.losses for s in states.values()))
    finally:
        store.close()


class TestHeartbeatChaos:
    def test_renewal_keeps_a_slow_cell_unstolen(self, tmp_path, capsys,
                                                monkeypatch):
        """A cell 5x slower than the lease is never stolen while its
        worker heartbeats (the default), and the output is
        byte-identical to a fault-free sequential run."""
        baseline = baseline_stdout(tmp_path, capsys)
        monkeypatch.setenv(FAULTS_ENV, SLOW_CELL_PLAN)
        url = f"sqlite:{tmp_path}/chaos.db"
        rc = main(["fig3", "--store", url, "--queue-workers", "2",
                   "--queue-lease", "0.4"])
        assert rc == 0
        assert capsys.readouterr().out == baseline
        renewals, steals = queue_totals(url)
        assert steals == 0, "a heartbeating worker must never be stolen from"
        assert renewals >= 1, "the slow cell must have renewed its lease"

    def test_disabled_renewal_forces_a_steal_and_output_still_matches(
            self, tmp_path, capsys, monkeypatch):
        """With heartbeats off the idle worker steals the expired lease
        and re-executes the slow cell — charged to the loss budget, yet
        invisible in the output (deterministic cells, idempotent puts,
        at-least-once delivery)."""
        baseline = baseline_stdout(tmp_path, capsys)
        monkeypatch.setenv(FAULTS_ENV, SLOW_CELL_PLAN)
        url = f"sqlite:{tmp_path}/chaos.db"
        rc = main(["fig3", "--store", url, "--queue-workers", "2",
                   "--queue-lease", "0.4", "--queue-renew-interval", "0"])
        assert rc == 0
        assert capsys.readouterr().out == baseline
        renewals, steals = queue_totals(url)
        assert steals >= 1, "an expired lease with no heartbeat is stolen"
        assert renewals == 0


class TestStoreFaultChaos:
    def test_injected_store_faults_are_absorbed_byte_identically(
            self, tmp_path, capsys, monkeypatch):
        """Lock contention, claim latency, and torn result writes are
        all absorbed by the retry stack: same bytes, full store, no
        quarantined entries."""
        baseline = baseline_stdout(tmp_path, capsys)
        monkeypatch.setenv(STORE_FAULTS_ENV, NOISY_STORE_PLAN)
        url = f"sqlite:{tmp_path}/noisy.db"
        rc = main(["fig3", "--store", url, "--queue-workers", "2"])
        assert rc == 0
        assert capsys.readouterr().out == baseline
        monkeypatch.delenv(STORE_FAULTS_ENV)
        store = open_store(url)
        try:
            assert len(store) == 4
            assert store.quarantined_count() == 0
        finally:
            store.close()

    def test_worker_exits_distinctly_on_a_permanent_store_error(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(STORE_FAULTS_ENV, BROKEN_STORE_PLAN)
        rc = worker_main(["--store", f"local:{tmp_path}/store",
                          "--queue", "doomed"])
        assert rc == EXIT_STORE_PERMANENT
        err = capsys.readouterr().err
        assert "store failure (permanent)" in err
        assert "malformed" in err

    def test_coordinator_stops_respawning_into_a_broken_store(
            self, tmp_path, capsys, monkeypatch):
        """Workers dying with EXIT_STORE_PERMANENT shrink the fleet
        instead of burning the respawn budget; the sweep fails loudly
        with the store-specific reason."""
        monkeypatch.setenv(STORE_FAULTS_ENV, BROKEN_STORE_PLAN)
        rc = main(["fig3", "--store", f"sqlite:{tmp_path}/broken.db",
                   "--queue-workers", "2", "--keep-going"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "aborted on permanent store errors" in err
        assert "4 failed cell(s)" in err

"""End-to-end queue-driven sweeps: byte-identical output and resume.

The acceptance bar for the store/queue redesign: a fig3 sweep executed
by independent queue workers — any backend, any worker count, even
interrupted halfway — prints exactly the bytes a plain ``--jobs 1``
run prints.
"""

from __future__ import annotations

import pickle

from repro.experiments.__main__ import main
from repro.experiments.registry import get_experiment
from repro.runner.cache import cell_key
from repro.store import LocalFileStore, QueueItem


def baseline_stdout(tmp_path, capsys):
    assert main(["fig3", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "baseline")]) == 0
    return capsys.readouterr().out


class TestQueueDrivenSweep:
    def test_two_sqlite_workers_match_jobs_1(self, tmp_path, capsys):
        """``--store sqlite: --queue-workers 2`` is byte-identical to a
        sequential local-cache run."""
        baseline = baseline_stdout(tmp_path, capsys)
        rc = main(["fig3", "--store", f"sqlite:{tmp_path}/results.db",
                   "--queue-workers", "2"])
        assert rc == 0
        assert capsys.readouterr().out == baseline

    def test_local_worker_matches_jobs_1(self, tmp_path, capsys):
        baseline = baseline_stdout(tmp_path, capsys)
        rc = main(["fig3", "--store", f"local:{tmp_path}/queue-store",
                   "--queue-workers", "1"])
        assert rc == 0
        assert capsys.readouterr().out == baseline

    def test_interrupted_worker_resumes_through_the_queue(
            self, tmp_path, capsys):
        """A worker stopped after 2 of 4 items (an 'interrupt') leaves a
        half-drained queue; the next full run serves the finished cells
        from the store, re-queues only the remainder, and still prints
        the baseline bytes."""
        from repro.runner.worker import main as worker_main

        baseline = baseline_stdout(tmp_path, capsys)
        store = LocalFileStore(tmp_path / "queue-store")

        # Publish the full sweep exactly as the coordinator would.
        spec = get_experiment("fig3")
        cells = list(spec.cells(spec.config("scaled")))
        keys = [cell_key(cell) for cell in cells]
        queue = store.make_queue("fig3")
        queue.publish([
            QueueItem(item_id=i, key=keys[i], label=cells[i].label,
                      payload=pickle.dumps((i, keys[i], cells[i]),
                                           protocol=pickle.HIGHEST_PROTOCOL))
            for i in range(len(cells))])

        # The "interrupted" worker: drains exactly 2 items, then exits.
        assert worker_main(["--store", store.url, "--queue", "fig3",
                            "--max-items", "2"]) == 0
        counts = queue.counts()
        assert counts["done"] == 2
        assert counts["pending"] == 2
        assert len(store) == 2
        capsys.readouterr()

        # Full rerun: the 2 finished cells are store hits, so only the
        # remaining 2 are re-published (a smaller sweep fingerprint
        # resets the stale queue) and executed by the spawned worker.
        rc = main(["fig3", "--store", store.url, "--queue-workers", "1"])
        assert rc == 0
        assert capsys.readouterr().out == baseline
        assert len(store) == len(cells)
        resumed = store.make_queue("fig3").snapshot()
        assert len(resumed) == 2
        assert all(s.status == "done" for s in resumed.values())

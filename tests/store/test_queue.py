"""Work-queue protocol conformance: claim/renew/ack/nack/steal on every
backend.

Leases are wall-clock, so expiry is simulated by claiming with a tiny
(or negative-effect) lease rather than sleeping: ``lease=0.0`` writes an
already-expired lease, making the item immediately stealable.  The
boundary tests go further and pin ``time.time`` itself (both backends
read it through the queue module), so "at exactly the expiry instant"
is a testable moment rather than a race.
"""

from __future__ import annotations

import pickle

import pytest

from repro.store import STORE_BACKENDS, ItemState, QueueItem
from repro.store.queue import LOST_ERROR_TYPE, sweep_fingerprint

from .helpers import make_store

BACKENDS = sorted(STORE_BACKENDS.values(), key=lambda cls: cls.scheme)


@pytest.fixture(params=BACKENDS, ids=lambda cls: cls.scheme)
def queue(request, tmp_path):
    store = make_store(request.param, tmp_path)
    yield store.make_queue("sweep")
    store.close()


def items_for(n, max_attempts=1):
    return [QueueItem(item_id=i, key=f"{i:064x}", label=f"cell-{i}",
                      payload=pickle.dumps(("cell", i)),
                      max_attempts=max_attempts)
            for i in range(n)]


class TestPublish:
    def test_publish_then_counts(self, queue):
        assert queue.publish(items_for(3)) == 3
        assert queue.counts() == {"pending": 3, "claimed": 0,
                                  "done": 0, "failed": 0}
        assert queue.unfinished() == 3

    def test_republish_is_idempotent(self, queue):
        batch = items_for(3)
        queue.publish(batch)
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id)
        # Same sweep again: no new items, done state preserved (resume).
        assert queue.publish(batch) == 0
        counts = queue.counts()
        assert counts["done"] == 1
        assert counts["pending"] == 2

    def test_different_sweep_resets_the_queue(self, queue):
        queue.publish(items_for(3))
        queue.ack(0)
        other = [QueueItem(item_id=i, key=f"{i + 7:064x}", label=f"o-{i}",
                           payload=b"x") for i in range(2)]
        assert sweep_fingerprint(other) != sweep_fingerprint(items_for(3))
        assert queue.publish(other) == 2
        counts = queue.counts()
        assert counts == {"pending": 2, "claimed": 0, "done": 0, "failed": 0}


class TestClaimAckNack:
    def test_claims_come_in_item_order(self, queue):
        queue.publish(items_for(3))
        assert queue.claim("w0", lease=60.0).item_id == 0
        assert queue.claim("w0", lease=60.0).item_id == 1
        assert queue.claim("w0", lease=60.0).item_id == 2
        assert queue.claim("w0", lease=60.0) is None

    def test_claim_round_trips_the_payload(self, queue):
        queue.publish(items_for(1))
        item = queue.claim("w0", lease=60.0)
        assert pickle.loads(item.payload) == ("cell", 0)
        assert item.key == f"{0:064x}"
        assert item.label == "cell-0"

    def test_ack_finishes_the_item(self, queue):
        queue.publish(items_for(1))
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id, elapsed=0.25)
        state = queue.snapshot()[0]
        assert state.status == "done"
        assert state.elapsed == 0.25
        assert queue.unfinished() == 0
        assert queue.claim("w0", lease=60.0) is None

    def test_nack_requeues_until_budget_spent(self, queue):
        queue.publish(items_for(1, max_attempts=2))
        item = queue.claim("w0", lease=60.0)
        assert queue.nack(item.item_id, "ValueError", "boom 1") is True
        item = queue.claim("w1", lease=60.0)  # retry is claimable
        assert item.attempts == 1
        assert queue.nack(item.item_id, "ValueError", "boom 2") is False
        state = queue.snapshot()[0]
        assert state.status == "failed"
        assert state.attempts == 2
        assert state.error_type == "ValueError"
        assert state.message == "boom 2"
        assert queue.claim("w0", lease=60.0) is None
        assert queue.unfinished() == 0

    def test_single_attempt_fails_on_first_nack(self, queue):
        queue.publish(items_for(1, max_attempts=1))
        item = queue.claim("w0", lease=60.0)
        assert queue.nack(item.item_id, "RuntimeError", "boom") is False
        assert queue.snapshot()[0].status == "failed"


class TestLeases:
    def test_live_lease_blocks_other_workers(self, queue):
        queue.publish(items_for(1))
        assert queue.claim("w0", lease=60.0) is not None
        assert queue.claim("w1", lease=60.0) is None

    def test_expired_lease_is_stolen_and_charged(self, queue):
        queue.publish(items_for(1, max_attempts=3))  # loss budget 2
        assert queue.claim("w0", lease=0.0) is not None  # expires at once
        stolen = queue.claim("w1", lease=60.0)
        assert stolen is not None
        assert stolen.item_id == 0
        assert queue.snapshot()[0].losses == 1

    def test_loss_budget_exhaustion_fails_permanently(self, queue):
        queue.publish(items_for(1, max_attempts=1))  # loss budget 1
        assert queue.claim("w0", lease=0.0) is not None   # loss 1 pending
        assert queue.claim("w1", lease=0.0) is not None   # charges loss 1
        assert queue.claim("w2", lease=60.0) is None      # loss 2: over
        state = queue.snapshot()[0]
        assert state.status == "failed"
        assert state.losses == 2
        assert state.error_type == LOST_ERROR_TYPE
        assert "expired" in state.message

    def test_final_steal_at_exactly_the_loss_budget_succeeds(self, queue):
        """Off-by-one guard: a steal that *reaches* the budget is still
        granted; only exceeding it fails the item."""
        queue.publish(items_for(1, max_attempts=3))  # loss budget 2
        assert queue.claim("w0", lease=0.0) is not None
        assert queue.claim("w1", lease=0.0) is not None   # loss 1
        assert queue.claim("w2", lease=0.0) is not None   # loss 2 == budget
        assert queue.snapshot()[0].losses == 2
        assert queue.claim("w3", lease=60.0) is None      # loss 3: over
        state = queue.snapshot()[0]
        assert state.status == "failed"
        assert state.losses == 3

    def test_lease_valid_through_its_expiry_instant(self, queue,
                                                    monkeypatch):
        """Both backends treat ``lease_expires == now`` as *held*: an
        item becomes stealable strictly after its expiry instant."""
        queue.publish(items_for(1, max_attempts=3))
        now = [1_000_000.0]
        monkeypatch.setattr("repro.store.queue.time.time",
                            lambda: now[0])
        assert queue.claim("w0", lease=30.0) is not None
        now[0] += 30.0  # exactly lease_expires
        assert queue.claim("w1", lease=30.0) is None
        assert queue.snapshot()[0].losses == 0
        now[0] += 0.001  # strictly past expiry
        stolen = queue.claim("w1", lease=30.0)
        assert stolen is not None and stolen.item_id == 0
        assert queue.snapshot()[0].losses == 1


class TestRenewal:
    def test_renew_extends_a_live_lease(self, queue, monkeypatch):
        queue.publish(items_for(1))
        now = [1_000_000.0]
        monkeypatch.setattr("repro.store.queue.time.time",
                            lambda: now[0])
        assert queue.claim("w0", lease=10.0) is not None
        now[0] += 8.0
        assert queue.renew(0, "w0", 10.0) is True  # expires at t0 + 18
        now[0] += 8.0  # t0 + 16: original lease long gone, renewal holds
        assert queue.claim("w1", lease=10.0) is None
        state = queue.snapshot()[0]
        assert state.status == "claimed"
        assert state.worker == "w0"
        assert state.renewals == 1
        assert state.losses == 0

    def test_late_renewal_before_any_steal_revives_the_lease(
            self, queue, monkeypatch):
        """A renewal past expiry but before a steal proves the worker
        is alive (just late) — the lease revives rather than racing."""
        queue.publish(items_for(1))
        now = [1_000_000.0]
        monkeypatch.setattr("repro.store.queue.time.time",
                            lambda: now[0])
        assert queue.claim("w0", lease=10.0) is not None
        now[0] += 25.0  # well past expiry, nobody stole yet
        assert queue.renew(0, "w0", 10.0) is True
        assert queue.claim("w1", lease=10.0) is None  # held again
        assert queue.snapshot()[0].worker == "w0"

    def test_renew_by_wrong_worker_is_refused(self, queue):
        queue.publish(items_for(1))
        assert queue.claim("w0", lease=60.0) is not None
        assert queue.renew(0, "imposter", 60.0) is False
        state = queue.snapshot()[0]
        assert state.worker == "w0"
        assert state.renewals == 0

    def test_renew_after_steal_cannot_revive_the_old_claim(self, queue):
        queue.publish(items_for(1, max_attempts=3))
        assert queue.claim("w0", lease=0.0) is not None  # expires at once
        assert queue.claim("w1", lease=60.0) is not None  # steals it
        assert queue.renew(0, "w0", 60.0) is False
        state = queue.snapshot()[0]
        assert state.worker == "w1"
        assert state.losses == 1

    def test_renew_of_unclaimed_or_finished_items_is_refused(self, queue):
        queue.publish(items_for(2))
        assert queue.renew(0, "w0", 60.0) is False  # still pending
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id)
        assert queue.renew(item.item_id, "w0", 60.0) is False  # done
        assert queue.renew(99, "w0", 60.0) is False  # unknown id


class TestRequeueFailed:
    def test_failed_items_reset_to_fresh_pending(self, queue):
        queue.publish(items_for(2, max_attempts=1))
        item = queue.claim("w0", lease=60.0)
        queue.nack(item.item_id, "ValueError", "boom")
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id)
        assert queue.requeue_failed() == 1
        state = queue.snapshot()[0]
        assert state.status == "pending"
        assert state.attempts == 0
        assert state.losses == 0
        assert state.error_type == ""
        # The done item stays done; only the failed one is runnable.
        assert queue.snapshot()[1].status == "done"
        assert queue.claim("w0", lease=60.0).item_id == 0

    def test_nothing_failed_is_a_noop(self, queue):
        queue.publish(items_for(2))
        assert queue.requeue_failed() == 0

    def test_requeue_clears_every_lease_and_loss_field(self, queue):
        """A requeued item is indistinguishable from a freshly published
        one — stale worker/lease/losses/renewals must not leak through
        (they would skew the steal accounting of the rerun)."""
        queue.publish(items_for(1, max_attempts=1))  # loss budget 1
        assert queue.claim("w0", lease=60.0) is not None
        assert queue.renew(0, "w0", 0.0) is True     # renewal, then expiry
        assert queue.claim("w1", lease=0.0) is not None  # steal: loss 1
        assert queue.claim("w2", lease=60.0) is None     # loss 2: failed
        assert queue.snapshot()[0].status == "failed"
        assert queue.requeue_failed() == 1
        assert queue.snapshot()[0] == ItemState()


class TestResetConsistency:
    def test_reset_items_clears_every_lease_and_loss_field(self, queue):
        queue.publish(items_for(1, max_attempts=3))
        assert queue.claim("w0", lease=60.0) is not None
        assert queue.renew(0, "w0", 60.0) is True
        queue.ack(0, elapsed=2.5)
        assert queue.reset_items([0]) == 1
        assert queue.snapshot()[0] == ItemState()
        # And the reset item is claimable by anyone, with no history.
        fresh = queue.claim("w9", lease=60.0)
        assert fresh is not None and fresh.attempts == 0


class TestResetItems:
    def test_done_items_reset_to_fresh_pending(self, queue):
        """The coordinator's stale-done path: a done item whose result
        vanished from the store is reset and claimable again."""
        queue.publish(items_for(3))
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id, elapsed=1.5)
        assert queue.reset_items([0, 99]) == 1  # unknown ids ignored
        state = queue.snapshot()[0]
        assert state.status == "pending"
        assert state.attempts == 0
        assert state.elapsed == 0.0
        assert queue.claim("w1", lease=60.0).item_id == 0

    def test_empty_request_is_a_noop(self, queue):
        queue.publish(items_for(1))
        assert queue.reset_items([]) == 0
        assert queue.snapshot()[0].status == "pending"


class TestClear:
    def test_clear_drops_everything(self, queue):
        queue.publish(items_for(3))
        queue.clear()
        assert queue.snapshot() == {}
        assert queue.unfinished() == 0


class TestFingerprint:
    def test_order_insensitive_identity(self):
        batch = items_for(3)
        assert sweep_fingerprint(batch) == sweep_fingerprint(batch[::-1])

    def test_sensitive_to_keys_and_ids(self):
        base = items_for(2)
        rekeyed = [QueueItem(item_id=i.item_id, key="f" * 64,
                             label=i.label, payload=i.payload)
                   for i in base]
        assert sweep_fingerprint(base) != sweep_fingerprint(rekeyed)

    def test_insensitive_to_payload_and_label(self):
        base = items_for(2)
        relabeled = [QueueItem(item_id=i.item_id, key=i.key,
                               label="x", payload=b"other")
                     for i in base]
        assert sweep_fingerprint(base) == sweep_fingerprint(relabeled)

"""Store fault injection + transient-retry stack, end to end.

Covers the three layers the chaos smoke relies on: plan parsing and
deterministic schedules (:mod:`repro.store.faults`), the
transient/permanent error line and bounded retries
(:mod:`repro.store.retry`), and their composition — a retried put
through an injected torn write must leave a valid entry behind.
"""

from __future__ import annotations

import errno
import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.store import (
    CacheCorruptionWarning,
    FaultyStore,
    LocalFileStore,
    QueueItem,
    RetryingQueue,
    RetryingStore,
    StoreFault,
    StoreFaultPlan,
    StoreRetryPolicy,
    active_store_plan,
    call_with_retries,
    is_transient_store_error,
    maybe_faulty_store,
)
from repro.store.faults import STORE_FAULTS_ENV, FaultInjector

from .helpers import key_of


def plan_of(*faults: StoreFault) -> StoreFaultPlan:
    return StoreFaultPlan(faults=tuple(faults))


# ------------------------------------------------------------- parsing --


class TestPlanParsing:
    def test_round_trip(self):
        plan = plan_of(
            StoreFault(op="put", kind="busy", every=3, times=2),
            StoreFault(op="get", kind="oserror", rate=0.5, seed=7))
        assert StoreFaultPlan.from_json(plan.to_json()) == plan

    def test_defaults(self):
        plan = StoreFaultPlan.from_json(
            '{"faults": [{"op": "claim", "kind": "latency"}]}')
        fault = plan.faults[0]
        assert (fault.every, fault.times, fault.rate) == (1, None, None)
        assert fault.seconds == 0.05

    @pytest.mark.parametrize("doc,match", [
        ("nonsense", "not valid JSON"),
        ('["not", "an", "object"]', "must be an object"),
        ('{"faults": ["nope"]}', "must be an object"),
        ('{"faults": [{"kind": "busy"}]}', "missing required field"),
        ('{"faults": [{"op": "put"}]}', "missing required field"),
        ('{"faults": [{"op": "put", "kind": "busy", "wat": 1}]}',
         "unknown store-fault fields"),
    ])
    def test_malformed_documents_fail_loudly(self, doc, match):
        with pytest.raises(ConfigurationError, match=match):
            StoreFaultPlan.from_json(doc)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(op="frobnicate", kind="busy"), "unknown store-fault op"),
        (dict(op="put", kind="explode"), "unknown store-fault kind"),
        (dict(op="put", kind="busy", every=0), "every must be >= 1"),
        (dict(op="put", kind="busy", times=-1), "times must be >= 0"),
        (dict(op="put", kind="latency", seconds=-1.0), "non-negative"),
        (dict(op="put", kind="busy", rate=1.5), "rate must be in"),
        (dict(op="get", kind="torn"), "only apply to 'put'"),
    ])
    def test_fault_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            StoreFault(**kwargs)

    def test_env_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(STORE_FAULTS_ENV, raising=False)
        assert active_store_plan() is None

    def test_env_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            STORE_FAULTS_ENV,
            '{"faults": [{"op": "*", "kind": "busy"}]}')
        plan = active_store_plan()
        assert plan is not None and plan.faults[0].op == "*"

    def test_env_at_path_indirection(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"op": "ack", "kind": "oserror"}]}')
        monkeypatch.setenv(STORE_FAULTS_ENV, f"@{path}")
        plan = active_store_plan()
        assert plan is not None and plan.faults[0].op == "ack"

    def test_env_missing_plan_file_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_FAULTS_ENV, f"@{tmp_path}/absent.json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            active_store_plan()


# ----------------------------------------------------------- schedules --


class TestInjectorSchedule:
    def test_every_n_with_times_cap(self):
        injector = FaultInjector(plan_of(
            StoreFault(op="get", kind="busy", every=3, times=2)))
        fired = [bool(injector.fire("get")) for _ in range(12)]
        # 1-based matches 3 and 6 fire; the times cap stops 9 and 12.
        assert fired == [False, False, True, False, False, True,
                         False, False, False, False, False, False]

    def test_ops_are_counted_independently(self):
        injector = FaultInjector(plan_of(
            StoreFault(op="put", kind="busy", every=2)))
        assert injector.fire("get") == []      # no match, no count
        assert injector.fire("put") == []      # put #1
        assert injector.fire("get") == []
        assert len(injector.fire("put")) == 1  # put #2 fires

    def test_wildcard_matches_every_op(self):
        injector = FaultInjector(plan_of(
            StoreFault(op="*", kind="busy", every=1, times=3)))
        assert len(injector.fire("get")) == 1
        assert len(injector.fire("claim")) == 1
        assert len(injector.fire("renew")) == 1
        assert injector.fire("ack") == []  # times exhausted
        assert injector.injected == {"get:busy": 1, "claim:busy": 1,
                                     "renew:busy": 1}

    def test_rate_schedule_is_seed_deterministic(self):
        plan = plan_of(StoreFault(op="get", kind="busy", rate=0.4, seed=11))
        pattern_a = [bool(FaultInjector(plan).fire("get"))
                     for _ in range(1)]  # fresh injector: first call only
        one = FaultInjector(plan)
        two = FaultInjector(plan)
        seq_one = [bool(one.fire("get")) for _ in range(50)]
        seq_two = [bool(two.fire("get")) for _ in range(50)]
        assert seq_one == seq_two          # pure function of (seed, calls)
        assert any(seq_one) and not all(seq_one)
        assert pattern_a == seq_one[:1]

    def test_kinds_raise_their_production_exceptions(self):
        busy = FaultInjector(plan_of(StoreFault(op="*", kind="busy")))
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            busy.inject("get")
        oserr = FaultInjector(plan_of(StoreFault(op="*", kind="oserror")))
        with pytest.raises(OSError) as exc_info:
            oserr.inject("get")
        assert exc_info.value.errno == errno.EAGAIN
        fatal = FaultInjector(plan_of(StoreFault(op="*", kind="fatal")))
        with pytest.raises(sqlite3.DatabaseError, match="malformed"):
            fatal.inject("get")

    def test_latency_delays_without_raising(self):
        injector = FaultInjector(plan_of(
            StoreFault(op="get", kind="latency", seconds=0.0)))
        assert injector.inject("get") == []
        assert injector.injected == {"get:latency": 1}


# ------------------------------------------------------ classification --


class TestTransientClassification:
    @pytest.mark.parametrize("exc", [
        sqlite3.OperationalError("database is locked"),
        sqlite3.OperationalError("database table is busy"),
        sqlite3.OperationalError("disk I/O error"),
        OSError(errno.EAGAIN, "try again"),
        OSError(errno.EBUSY, "busy"),
        OSError("errno-less oserror"),
    ])
    def test_transient(self, exc):
        assert is_transient_store_error(exc) is True

    @pytest.mark.parametrize("exc", [
        sqlite3.OperationalError("no such table: entries"),
        sqlite3.DatabaseError("database disk image is malformed"),
        sqlite3.IntegrityError("UNIQUE constraint failed"),
        OSError(errno.ENOSPC, "no space left on device"),
        OSError(errno.ENOENT, "no such file"),
        ValueError("not a store error at all"),
    ])
    def test_permanent(self, exc):
        assert is_transient_store_error(exc) is False


# -------------------------------------------------------------- retries --


class TestCallWithRetries:
    def test_transient_errors_retry_within_budget(self):
        policy = StoreRetryPolicy(retries=3, backoff_base=0.0,
                                  backoff_cap=0.0)
        seen = []
        attempts = [0]

        def flaky():
            attempts[0] += 1
            if attempts[0] <= 2:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        result = call_with_retries(
            flaky, policy=policy, operation="store.get",
            on_retry=lambda op, exc, n: seen.append((op, n)))
        assert result == "ok"
        assert attempts[0] == 3
        assert seen == [("store.get", 1), ("store.get", 2)]

    def test_budget_exhaustion_reraises_the_transient(self):
        policy = StoreRetryPolicy(retries=2, backoff_base=0.0,
                                  backoff_cap=0.0)

        def always_busy():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            call_with_retries(always_busy, policy=policy)

    def test_permanent_errors_never_retry(self):
        calls = [0]

        def broken():
            calls[0] += 1
            raise sqlite3.DatabaseError("malformed")

        with pytest.raises(sqlite3.DatabaseError):
            call_with_retries(broken, policy=StoreRetryPolicy(retries=5))
        assert calls[0] == 1

    def test_policy_validation_and_delay_shape(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            StoreRetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError, match="non-negative"):
            StoreRetryPolicy(backoff_base=-0.1)
        policy = StoreRetryPolicy(backoff_base=0.01, backoff_cap=0.05)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == \
            [0.01, 0.02, 0.04, 0.05]


# -------------------------------------------------- wrapped store/queue --


FAST = StoreRetryPolicy(retries=5, backoff_base=0.0, backoff_cap=0.0)


def faulty_local(tmp_path, *faults: StoreFault) -> FaultyStore:
    return FaultyStore(LocalFileStore(tmp_path / "store"), plan_of(*faults))


class TestRetryingOverFaulty:
    def test_put_get_survive_injected_busy(self, tmp_path):
        store = RetryingStore(
            faulty_local(tmp_path,
                         StoreFault(op="*", kind="busy", every=1, times=4)),
            FAST)
        store.put(key_of(1), {"v": 1})
        assert store.get(key_of(1)) == (True, {"v": 1})
        assert store.inner.injector.injected["put:busy"] >= 1

    def test_fatal_fault_escapes_the_retry_stack(self, tmp_path):
        store = RetryingStore(
            faulty_local(tmp_path, StoreFault(op="put", kind="fatal")),
            FAST)
        with pytest.raises(sqlite3.DatabaseError, match="malformed"):
            store.put(key_of(2), "doomed")

    def test_torn_write_recovers_through_retry(self, tmp_path):
        """The headline chaos case: a torn put leaves truncated bytes
        and raises EIO; the retry rewrites the full checksummed entry."""
        store = RetryingStore(
            faulty_local(tmp_path,
                         StoreFault(op="put", kind="torn", times=1)),
            FAST)
        store.put(key_of(3), [1, 2, 3])
        assert store.get(key_of(3)) == (True, [1, 2, 3])
        assert store.quarantined_count() == 0

    def test_unretried_torn_write_is_caught_by_the_checksum(self, tmp_path):
        store = faulty_local(
            tmp_path, StoreFault(op="put", kind="torn", times=1))
        with pytest.raises(OSError):
            store.put(key_of(4), [1, 2, 3])
        # The truncated entry is on disk; the checksum path quarantines
        # it instead of serving garbage.
        with pytest.warns(CacheCorruptionWarning):
            assert store.get(key_of(4)) == (False, None)
        assert store.quarantined_count() == 1

    def test_queue_shares_the_store_injector(self, tmp_path):
        store = faulty_local(
            tmp_path, StoreFault(op="claim", kind="busy", every=2))
        queue = RetryingQueue(store.make_queue("sweep"), FAST)
        queue.publish([QueueItem(item_id=0, key=key_of(0), label="c",
                                 payload=b"p")])
        item = queue.claim("w0", 60.0)   # claim #1 clean, retry absorbs #2
        assert item is not None
        queue.ack(item.item_id)
        assert store.injector.injected.get("claim:busy", 0) >= 0
        assert store.injector._seen[0] >= 1

    def test_renew_faults_are_absorbed(self, tmp_path):
        store = faulty_local(
            tmp_path, StoreFault(op="renew", kind="busy", every=1, times=2))
        queue = RetryingQueue(store.make_queue("sweep"), FAST)
        queue.publish([QueueItem(item_id=0, key=key_of(0), label="c",
                                 payload=b"p")])
        assert queue.claim("w0", 60.0) is not None
        assert queue.renew(0, "w0", 60.0) is True
        assert store.injector.injected["renew:busy"] >= 1


class TestMaybeFaultyStore:
    def test_without_env_the_store_passes_through(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.delenv(STORE_FAULTS_ENV, raising=False)
        store = LocalFileStore(tmp_path)
        assert maybe_faulty_store(store) is store

    def test_with_env_the_store_is_wrapped(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            STORE_FAULTS_ENV, '{"faults": [{"op": "get", "kind": "busy"}]}')
        store = LocalFileStore(tmp_path)
        wrapped = maybe_faulty_store(store)
        assert isinstance(wrapped, FaultyStore)
        assert wrapped.inner is store
        # Workers respawn the raw URL and wrap it themselves.
        assert wrapped.url == store.url

    def test_empty_plan_passes_through(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_FAULTS_ENV, '{"faults": []}')
        store = LocalFileStore(tmp_path)
        assert maybe_faulty_store(store) is store

"""Backend-conformance suite: every registered store behaves identically.

Parametrized over :data:`repro.store.STORE_BACKENDS`, so a newly
registered backend is automatically held to the same contract:
checksummed round-trips, corruption quarantine, concurrent put/get
from separate processes, and a purge that counts live and quarantined
entries separately.  See CONTRIBUTING.md ("Adding a store backend").
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.store import (
    STORE_BACKENDS,
    STORE_MAGIC,
    CacheCorruptionWarning,
    LocalFileStore,
    SQLiteStore,
    open_store,
    resolve_store,
)

from .helpers import get_many, key_of, make_store, put_many

BACKENDS = sorted(STORE_BACKENDS.values(), key=lambda cls: cls.scheme)


@pytest.fixture(params=BACKENDS, ids=lambda cls: cls.scheme)
def store(request, tmp_path):
    st = make_store(request.param, tmp_path)
    yield st
    st.close()


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        key = key_of(1)
        assert store.get(key) == (False, None)
        assert key not in store
        store.put(key, {"x": [1, 2, 3]})
        assert key in store
        assert store.get(key) == (True, {"x": [1, 2, 3]})
        assert len(store) == 1

    def test_overwrite_replaces(self, store):
        key = key_of(2)
        store.put(key, "old")
        store.put(key, "new")
        assert store.get(key) == (True, "new")
        assert len(store) == 1

    def test_entry_format_is_checksummed_v2(self, store):
        """All backends share the exact v2 blob: magic + sha256 + pickle."""
        key = key_of(3)
        store.put(key, [1, 2, 3])
        blob = store._read(key)
        assert blob.startswith(STORE_MAGIC)
        digest, _, payload = blob[len(STORE_MAGIC):].partition(b"\n")
        assert hashlib.sha256(payload).hexdigest().encode() == digest
        assert pickle.loads(payload) == [1, 2, 3]

    def test_missing_entry_is_a_silent_miss(self, store, recwarn):
        assert store.get(key_of(4)) == (False, None)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, CacheCorruptionWarning)]


class TestCorruptionQuarantine:
    def test_garbage_warns_quarantines_and_recovers(self, store):
        key = key_of(5)
        store.write_raw(key, b"\x80truncated garbage")
        with pytest.warns(CacheCorruptionWarning, match="quarantined"):
            assert store.get(key) == (False, None)
        assert len(store) == 0
        assert store.quarantined_count() == 1
        # The quarantined entry does not shadow a fresh write.
        store.put(key, "value")
        assert store.get(key) == (True, "value")

    def test_checksum_mismatch_is_detected(self, store):
        key = key_of(6)
        store.put(key, [1, 2, 3])
        blob = bytearray(store._read(key))
        blob[-1] ^= 0xFF  # flip one payload bit; the header stays valid
        store.write_raw(key, bytes(blob))
        with pytest.warns(CacheCorruptionWarning, match="checksum mismatch"):
            assert store.get(key) == (False, None)
        assert store.quarantined_count() == 1

    def test_unpicklable_payload_is_quarantined(self, store):
        payload = b"definitely not a pickle"
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        key = key_of(7)
        store.write_raw(key, STORE_MAGIC + digest + b"\n" + payload)
        with pytest.warns(CacheCorruptionWarning, match="unpickle"):
            assert store.get(key) == (False, None)
        assert store.quarantined_count() == 1


class TestPurge:
    def test_counts_live_and_quarantined_separately(self, store):
        for n in range(3):
            store.put(key_of(n), n)
        store.write_raw(key_of(9), b"garbage")
        with pytest.warns(CacheCorruptionWarning):
            store.get(key_of(9))
        result = store.purge()
        assert result == (3, 1)
        assert result.entries == 3
        assert result.quarantined == 1
        assert result.total == 4
        assert len(store) == 0
        assert store.quarantined_count() == 0

    def test_empty_store_purges_to_zero(self, store):
        assert store.purge() == (0, 0)


class TestConcurrency:
    def test_concurrent_puts_from_processes(self, store):
        """Two processes writing disjoint key ranges; nothing is lost."""
        batches = [[(key_of(100 + n), n) for n in range(8)],
                   [(key_of(200 + n), n) for n in range(8)]]
        with ProcessPoolExecutor(max_workers=2) as ex:
            counts = list(ex.map(put_many, [store, store], batches))
        assert counts == [8, 8]
        assert len(store) == 16
        for batch in batches:
            for key, value in batch:
                assert store.get(key) == (True, value)

    def test_concurrent_gets_see_prior_writes(self, store):
        keys = [key_of(300 + n) for n in range(6)]
        for n, key in enumerate(keys):
            store.put(key, n * n)
        with ProcessPoolExecutor(max_workers=2) as ex:
            results = list(ex.map(get_many, [store, store], [keys, keys]))
        assert results[0] == results[1] == [
            (True, n * n) for n in range(6)]


class TestStatsAndIdentity:
    def test_stats_track_session_traffic(self, store):
        key = key_of(8)
        store.get(key)                      # miss
        store.put(key, 1)                   # put
        store.get(key)                      # hit
        store.write_raw(key_of(9), b"bad")
        with pytest.warns(CacheCorruptionWarning):
            store.get(key_of(9))            # miss + quarantine
        stats = store.stats()
        assert stats.backend == store.scheme
        assert stats.location == store.url
        assert stats.entries == 1
        assert stats.quarantined == 1
        assert (stats.hits, stats.misses) == (1, 2)
        assert (stats.puts, stats.quarantines) == (1, 1)

    def test_url_reopens_the_same_store(self, store):
        store.put(key_of(10), "shared")
        reopened = open_store(store.url)
        try:
            assert reopened.get(key_of(10)) == (True, "shared")
        finally:
            reopened.close()

    def test_aux_dir_is_created_and_stable(self, store):
        path = store.aux_dir("failures")
        assert path.is_dir()
        assert store.aux_dir("failures") == path

    def test_queues_lists_published_queues_sorted(self, store):
        from repro.store import QueueItem

        assert store.queues() == []
        for name in ("zeta", "alpha"):
            store.make_queue(name).publish([QueueItem(
                item_id=0, key=key_of(0), label="cell", payload=b"p")])
        assert store.queues() == ["alpha", "zeta"]

    def test_queues_listing_does_not_create_anything(self, store):
        """Discovery is read-only: make_queue may create storage, but
        queues() itself never does."""
        assert store.queues() == []
        assert store.queues() == []


class TestOpenStore:
    def test_bare_path_opens_local(self, tmp_path):
        store = open_store(tmp_path / "cache")
        assert isinstance(store, LocalFileStore)
        assert store.root == tmp_path / "cache"

    def test_scheme_urls_select_backends(self, tmp_path):
        assert isinstance(open_store(f"local:{tmp_path}/a"), LocalFileStore)
        sq = open_store(f"sqlite:{tmp_path}/b.sqlite")
        assert isinstance(sq, SQLiteStore)
        sq.close()

    def test_instance_passes_through(self, tmp_path):
        store = LocalFileStore(tmp_path)
        assert open_store(store) is store
        assert resolve_store(store) is store

    def test_none_resolves_to_none(self):
        assert resolve_store(None) is None

    def test_unknown_scheme_lists_backends(self, tmp_path):
        with pytest.raises(ConfigurationError, match="local"):
            open_store(f"redis:{tmp_path}")

    def test_missing_path_after_scheme_raises(self):
        with pytest.raises(ConfigurationError, match="no path"):
            open_store("sqlite:")

    def test_windows_drive_letter_is_a_path(self, tmp_path, monkeypatch):
        """A one-letter 'scheme' is a drive letter, not a backend."""
        monkeypatch.chdir(tmp_path)
        store = open_store("c:relative-ish")
        assert isinstance(store, LocalFileStore)

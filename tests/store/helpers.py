"""Module-scope helpers for store tests (picklable into workers)."""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.store import ExperimentStore


def make_store(backend, tmp_path):
    """Instantiate ``backend`` (a registered store class) under tmp_path."""
    if backend.scheme == "sqlite":
        return backend(tmp_path / "store.sqlite")
    return backend(tmp_path / "store")


def put_many(store: ExperimentStore, pairs: List[Tuple[str, Any]]) -> int:
    """Worker body for concurrent-put tests: put every pair, count them."""
    for key, value in pairs:
        store.put(key, value)
    return len(pairs)


def get_many(store: ExperimentStore, keys: List[str]) -> List[Any]:
    """Worker body for concurrent-get tests."""
    return [store.get(key) for key in keys]


def key_of(n: int) -> str:
    """A deterministic 64-hex-char pseudo-key for test entry ``n``."""
    return f"{n:064x}"

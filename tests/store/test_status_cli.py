"""The read-only queue-status CLI (``python -m repro.store status``).

Rendering is tested with an injected ``now`` so time-to-expiry strings
are exact; the command-level tests cover queue discovery, filtering,
and the error exits.
"""

from __future__ import annotations

import pickle

import pytest

from repro.store import LocalFileStore, QueueItem, SQLiteStore
from repro.store.__main__ import main, render_queue_status

from .helpers import key_of


def publish(store, name, n=3):
    queue = store.make_queue(name)
    queue.publish([
        QueueItem(item_id=i, key=key_of(i), label=f"fig3[{i}]",
                  payload=pickle.dumps(i))
        for i in range(n)])
    return queue


@pytest.fixture
def store(tmp_path):
    st = SQLiteStore(tmp_path / "results.db")
    yield st
    st.close()


class TestRendering:
    def test_counts_line_covers_every_status(self, store):
        queue = publish(store, "fig3", n=4)
        item = queue.claim("w0", lease=60.0)
        queue.ack(item.item_id, elapsed=1.25)
        item = queue.claim("w0", lease=60.0)
        queue.nack(item.item_id, "ValueError", "boom")  # budget is 1: failed
        item = queue.claim("w0", lease=60.0)

        lines = render_queue_status(store, "fig3", now=0.0)
        assert lines[0] == f"queue 'fig3' @ {store.url}"
        assert "pending=1" in lines[1]
        assert "claimed=1" in lines[1]
        assert "done=1" in lines[1]
        assert "failed=1" in lines[1]
        assert "(4 items)" in lines[1]

    def test_claimed_item_shows_holder_and_time_to_expiry(self, store):
        queue = publish(store, "fig3", n=1)
        queue.claim("w7", lease=30.0)
        expires = queue.snapshot()[0].lease_expires

        live = render_queue_status(store, "fig3", now=expires - 12.0)
        assert any("worker=w7 lease expires in 12.0s" in ln for ln in live)

        expired = render_queue_status(store, "fig3", now=expires + 5.0)
        assert any("worker=w7 lease EXPIRED 5.0s ago (stealable)" in ln
                   for ln in expired)

    def test_failed_item_shows_the_recorded_error(self, store):
        queue = publish(store, "fig3", n=1)
        item = queue.claim("w0", lease=60.0)
        queue.nack(item.item_id, "ValueError", "boom")  # budget is 1: failed
        lines = render_queue_status(store, "fig3", now=0.0)
        assert any("[failed]" in ln and "ValueError: boom" in ln
                   for ln in lines)
        assert any("attempts=1" in ln for ln in lines)

    def test_renewed_and_lossy_items_are_interesting(self, store):
        queue = publish(store, "fig3", n=2)
        queue.claim("w0", lease=60.0)
        queue.renew(0, "w0", 60.0)
        item = queue.claim("w1", lease=60.0)
        queue.ack(item.item_id)

        lines = render_queue_status(store, "fig3", now=0.0)
        assert any("#0000" in ln and "renewals=1" in ln for ln in lines)
        # The cleanly finished item is boring without --verbose...
        assert not any("#0001" in ln for ln in lines)
        # ...and listed with it.
        verbose = render_queue_status(store, "fig3", now=0.0, verbose=True)
        assert any("#0001" in ln and "[done]" in ln for ln in verbose)

    def test_labels_come_from_the_published_items(self, store):
        queue = publish(store, "fig3", n=1)
        queue.claim("w0", lease=60.0)
        lines = render_queue_status(store, "fig3", now=0.0)
        assert any("fig3[0]" in ln for ln in lines)


class TestCommand:
    def test_status_prints_every_queue(self, tmp_path, capsys):
        store = LocalFileStore(tmp_path / "cache")
        publish(store, "fig3")
        publish(store, "fig4")
        assert main(["status", "--store", store.url]) == 0
        out = capsys.readouterr().out
        assert "queue 'fig3'" in out
        assert "queue 'fig4'" in out

    def test_queue_filter_selects_one(self, tmp_path, capsys):
        store = LocalFileStore(tmp_path / "cache")
        publish(store, "fig3")
        publish(store, "fig4")
        assert main(["status", "--store", store.url,
                     "--queue", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "queue 'fig4'" in out
        assert "fig3" not in out

    def test_unknown_queue_exits_1(self, tmp_path, capsys):
        store = LocalFileStore(tmp_path / "cache")
        publish(store, "fig3")
        assert main(["status", "--store", store.url,
                     "--queue", "nope"]) == 1
        err = capsys.readouterr().err
        assert "no queue named 'nope'" in err
        assert "fig3" in err

    def test_store_without_queues_says_so(self, tmp_path, capsys):
        store = LocalFileStore(tmp_path / "cache")
        store.put(key_of(0), "just results, no queues")
        assert main(["status", "--store", store.url]) == 0
        assert "no work queues" in capsys.readouterr().out

    def test_bad_store_url_exits_2(self, tmp_path, capsys):
        assert main(["status", "--store", f"redis:{tmp_path}"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_status_never_mutates_the_queue(self, tmp_path, capsys):
        store = LocalFileStore(tmp_path / "cache")
        queue = publish(store, "fig3")
        queue.claim("w0", lease=60.0)
        before = queue.snapshot()
        assert main(["status", "--store", store.url, "-v"]) == 0
        capsys.readouterr()
        assert store.make_queue("fig3").snapshot() == before

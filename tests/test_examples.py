"""The example scripts must stay runnable (fast ones run end-to-end)."""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py", "trace_pipeline.py"]


def test_at_least_three_examples_exist():
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_parse_and_have_docstrings(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    names = {node.name for node in tree.body
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()

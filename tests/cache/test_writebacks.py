"""Tests for dirty-line tracking and writeback accounting."""

import pytest

from repro.cache.arrays import SetAssociativeArray, ZCacheArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.errors import ConfigurationError
from repro.sim.config import SystemConfig, TABLE_II
from repro.sim.engine import MultiprogramSimulator
from repro.sim.memory import MemoryController
from repro.trace.access import Trace


def tiny_cache(lines=4, ways=4, parts=1):
    return PartitionedCache(SetAssociativeArray(lines, ways), LRURanking(),
                            PartitioningFirstScheme(), parts)


class TestDirtyTracking:
    def test_clean_eviction_no_writeback(self):
        cache = tiny_cache()
        for a in range(5):
            cache.access(a, 0)
        assert cache.stats.writebacks == [0]
        assert cache.writeback_pending is False

    def test_dirty_insertion_writes_back_on_eviction(self):
        cache = tiny_cache()
        cache.access(0, 0, is_write=True)
        for a in range(1, 4):
            cache.access(a, 0)
        cache.access(4, 0)   # evicts line 0, which is dirty
        assert cache.stats.writebacks == [1]
        assert cache.writeback_pending is True
        cache.access(5, 0)   # evicts clean line 1
        assert cache.writeback_pending is False
        assert cache.stats.writebacks == [1]

    def test_write_hit_dirties_line(self):
        cache = tiny_cache()
        cache.access(0, 0)                 # clean insert
        cache.access(0, 0, is_write=True)  # dirtied by a store hit
        for a in range(1, 5):
            cache.access(a, 0)
        assert cache.stats.writebacks == [1]

    def test_writeback_attributed_to_owner(self):
        cache = tiny_cache(parts=2)
        # Partition 0 has a zero target, so its dirty line is the victim
        # once partition 1 needs the space.
        cache.set_targets([0, 4])
        cache.access(0, 0, is_write=True)
        for a in range(100, 104):
            cache.access(a, 1)
        assert cache.stats.writebacks[0] == 1
        assert cache.stats.writebacks[1] == 0

    def test_invalidate_writes_back_dirty_line(self):
        cache = tiny_cache(lines=8, ways=4)
        cache.access(0, 0, is_write=True)
        cache.invalidate_index(cache.array.lookup(0))
        assert cache.stats.writebacks == [1]
        assert cache.stats.flushes == 1

    def test_zcache_relocation_carries_dirty_bit(self):
        cache = PartitionedCache(ZCacheArray(64, 4, 16, hash_seed=1),
                                 LRURanking(), PartitioningFirstScheme(), 1)
        import random
        rng = random.Random(0)
        writes = set()
        for _ in range(3000):
            addr = rng.randrange(200)
            is_write = rng.random() < 0.5
            cache.access(addr, 0, is_write=is_write)
            if is_write:
                writes.add(addr)
        # Dirty count among resident lines must match the lines last
        # touched by writes that are still resident and not rewritten...
        # (exact tracking is complex; check the conservative invariant:
        # every dirty slot holds a line that was written at least once.)
        for idx in range(cache.num_lines):
            if cache._dirty[idx]:
                assert cache.array.addr_at(idx) in writes


class TestMemoryWritebacks:
    def test_writeback_occupies_channel(self):
        mcu = MemoryController(TABLE_II)
        mcu.writeback(0.0)
        # A demand fill right after the writeback queues behind it.
        assert mcu.request(0.0) == pytest.approx(204.0)
        assert mcu.writebacks == 1

    def test_utilization_includes_writebacks(self):
        mcu = MemoryController(TABLE_II)
        mcu.request(0.0)
        mcu.writeback(0.0)
        assert mcu.utilization(80.0) == pytest.approx(0.1)


class TestEngineWriteFractions:
    def test_validation(self):
        cache = tiny_cache(lines=16, ways=4)
        with pytest.raises(ConfigurationError):
            MultiprogramSimulator(cache, [Trace([1])],
                                  write_fractions=[0.5, 0.5])
        with pytest.raises(ConfigurationError):
            MultiprogramSimulator(tiny_cache(lines=16, ways=4), [Trace([1])],
                                  write_fractions=[1.5])

    def test_writeback_traffic_slows_write_heavy_thread(self):
        """On a narrow channel, a write-heavy all-miss stream must run
        slower than the same stream read-only (writebacks steal
        bandwidth)."""
        slow = SystemConfig(memory_bandwidth_gbps=0.5)  # 256 cycles/line

        def run(write_fraction):
            cache = tiny_cache(lines=16, ways=4)
            trace = Trace(range(2000), gaps=[5] * 2000)
            sim = MultiprogramSimulator(cache, [trace], slow,
                                        instruction_limit=5000,
                                        write_fractions=[write_fraction])
            return sim.run().threads[0].cycles

        assert run(1.0) > run(0.0) * 1.2

    def test_deterministic_with_seed(self):
        def run():
            cache = tiny_cache(lines=16, ways=4)
            trace = Trace(range(500), gaps=[5] * 500)
            sim = MultiprogramSimulator(cache, [trace],
                                        instruction_limit=2000,
                                        write_fractions=[0.5], seed=9)
            sim.run()
            return list(cache.stats.writebacks)

        assert run() == run()

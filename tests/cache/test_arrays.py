"""Tests for the cache array organizations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.arrays import (
    INVALID,
    DirectMappedArray,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.errors import ConfigurationError


def fill_and_check(array, addresses):
    """Place each address at one of its candidates (evicting as needed) and
    verify lookup consistency throughout."""
    for addr in addresses:
        if array.lookup(addr) is not None:
            continue
        cands = array.candidates(addr)
        victim = next((c for c in cands if array.addr_at(c) == INVALID),
                      cands[0])
        array.evict(victim)
        array.place(addr, victim)
        assert array.lookup(addr) is not None
        idx = array.lookup(addr)
        assert array.addr_at(idx) == addr


class TestGeometryValidation:
    def test_nonpositive_lines(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeArray(0, 4)

    def test_lines_not_multiple_of_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeArray(130, 16)

    def test_sets_not_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeArray(48, 4)  # 12 sets

    def test_random_candidates_exceeds_lines(self):
        with pytest.raises(ConfigurationError):
            RandomCandidatesArray(8, 16)

    def test_zcache_candidates_below_ways(self):
        with pytest.raises(ConfigurationError):
            ZCacheArray(64, 4, 2)


class TestSetAssociativeArray:
    def test_candidates_are_the_set(self):
        a = SetAssociativeArray(64, 4)
        cands = a.candidates(1234)
        assert len(cands) == 4
        base = min(cands)
        # candidates() returns an index Sequence (a range here), not a list.
        assert list(cands) == list(range(base, base + 4))
        assert base % 4 == 0

    def test_candidate_count_equals_ways(self):
        a = SetAssociativeArray(64, 4)
        assert a.candidate_count == 4

    def test_same_set_same_candidates(self):
        a = SetAssociativeArray(64, 4)
        assert a.candidates(77) == a.candidates(77)

    def test_place_and_lookup(self):
        a = SetAssociativeArray(64, 4)
        fill_and_check(a, range(200))
        assert a.resident_count() <= 64

    def test_evict_clears(self):
        a = SetAssociativeArray(64, 4)
        c = a.candidates(5)[0]
        a.place(5, c)
        assert a.evict(c) == 5
        assert a.lookup(5) is None
        assert a.addr_at(c) == INVALID
        # Double evict is a no-op returning INVALID.
        assert a.evict(c) == INVALID

    def test_place_into_occupied_slot_rejected(self):
        a = SetAssociativeArray(64, 4)
        c = a.candidates(5)[0]
        a.place(5, c)
        with pytest.raises(ConfigurationError):
            a.place(6, c)


class TestDirectMapped:
    def test_single_candidate(self):
        a = DirectMappedArray(64)
        assert len(a.candidates(99)) == 1
        assert a.candidate_count == 1


class TestFullyAssociative:
    def test_free_slots_first(self):
        a = FullyAssociativeArray(8)
        seen = set()
        for addr in range(8):
            cands = a.candidates(addr)
            assert len(cands) == 1
            assert a.addr_at(cands[0]) == INVALID
            a.place(addr, cands[0])
            seen.add(cands[0])
        assert seen == set(range(8))
        assert a.free_slot() is None

    def test_full_gives_all_lines(self):
        a = FullyAssociativeArray(4)
        for addr in range(4):
            a.place(addr, a.free_slot())
        assert sorted(a.candidates(100)) == [0, 1, 2, 3]

    def test_evict_returns_slot_to_free_list(self):
        a = FullyAssociativeArray(4)
        for addr in range(4):
            a.place(addr, a.free_slot())
        a.evict(2)
        assert a.free_slot() == 2


class TestRandomCandidates:
    def test_distinct_candidates(self):
        a = RandomCandidatesArray(128, 16, seed=3)
        for _ in range(50):
            cands = a.candidates(0)
            assert len(cands) == 16
            assert len(set(cands)) == 16
            assert all(0 <= c < 128 for c in cands)

    def test_seed_determinism(self):
        a = RandomCandidatesArray(128, 8, seed=5)
        b = RandomCandidatesArray(128, 8, seed=5)
        assert [a.candidates(0) for _ in range(10)] == \
               [b.candidates(0) for _ in range(10)]

    def test_uniform_coverage(self):
        a = RandomCandidatesArray(64, 8, seed=1)
        seen = set()
        for _ in range(200):
            seen.update(a.candidates(0))
        assert seen == set(range(64))

    def test_any_slot_holds_any_address(self):
        a = RandomCandidatesArray(32, 4, seed=2)
        a.place(999, 17)
        assert a.lookup(999) == 17


class TestSkewAssociative:
    def test_one_candidate_per_way(self):
        a = SkewAssociativeArray(64, 4)
        cands = a.candidates(123)
        assert len(cands) == 4
        # One candidate in each way's region.
        regions = sorted(c // a.num_sets for c in cands)
        assert regions == [0, 1, 2, 3]

    def test_different_hashes_per_way(self):
        a = SkewAssociativeArray(256, 4)
        # With per-way hashing, set indices within ways should differ for
        # most addresses (unlike a set-associative cache).
        differing = 0
        for addr in range(100):
            offsets = {c % a.num_sets for c in a.candidates(addr)}
            if len(offsets) > 1:
                differing += 1
        assert differing > 50

    def test_fill(self):
        a = SkewAssociativeArray(64, 4)
        fill_and_check(a, range(150))


class TestZCache:
    def test_walk_yields_requested_candidates(self):
        a = ZCacheArray(64, 4, 16, hash_seed=1)
        # Empty cache: walk cannot expand beyond first level.
        assert len(a.candidates(1)) == 4
        fill_and_check(a, range(64))
        cands = a.candidates(1000)
        assert len(cands) == 16
        assert len(set(cands)) == 16

    def test_relocations_keep_lookup_consistent(self):
        rng = random.Random(0)
        a = ZCacheArray(64, 4, 16, hash_seed=2)
        resident = {}
        for step in range(500):
            addr = rng.randrange(200)
            if a.lookup(addr) is not None:
                continue
            cands = a.candidates(addr)
            victim = next((c for c in cands if a.addr_at(c) == INVALID),
                          cands[rng.randrange(len(cands))])
            old = a.evict(victim)
            resident.pop(old, None)
            moves = a.place(addr, victim)
            resident[addr] = True
            # Every resident address must still be findable and stored
            # in a slot it hashes to in some way.
            for r in resident:
                idx = a.lookup(r)
                assert idx is not None
                assert idx in a._slots_for(r)
            for src, dst in moves:
                assert a.addr_at(src) in (INVALID,) or True

    def test_relocation_moves_reported_in_order(self):
        a = ZCacheArray(64, 4, 16, hash_seed=3)
        fill_and_check(a, range(64))
        addr = 5000
        cands = a.candidates(addr)
        # Choose the deepest candidate to force relocations.
        victim = cands[-1]
        a.evict(victim)
        moves = a.place(addr, victim)
        idx = a.lookup(addr)
        assert idx in a._slots_for(addr)
        if moves:
            # The first move fills the victim slot.
            assert moves[0][1] == victim

    def test_direct_place_requires_first_level_slot(self):
        a = ZCacheArray(64, 4, 16)
        with pytest.raises(ConfigurationError):
            bad_slot = (a._slots_for(7)[0] + 1) % 64
            while bad_slot in a._slots_for(7):
                bad_slot = (bad_slot + 1) % 64
            a.place(7, bad_slot)


@pytest.mark.parametrize("factory", [
    lambda: SetAssociativeArray(64, 4),
    lambda: SkewAssociativeArray(64, 4),
    lambda: ZCacheArray(64, 4, 8),
    lambda: RandomCandidatesArray(64, 8, seed=0),
    lambda: FullyAssociativeArray(64),
])
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_resident_count_matches_occupancy(factory, data):
    addresses = data.draw(st.lists(st.integers(0, 300), max_size=120))
    a = factory()
    fill_and_check(a, addresses)
    occupied = sum(1 for i in range(a.num_lines) if a.addr_at(i) != INVALID)
    assert occupied == a.resident_count()

"""Occupancy bookkeeping property: for every registered scheme, the
cache's incrementally-maintained ``actual_sizes`` must exactly equal a
fresh recount of the owner array after *every* eviction, relocation and
flush — the events where the array-backed kernel hand-maintains the
per-partition counters.

The auditor is a plain :class:`CacheObserver`, so this also exercises the
event-bus subscribe path (kernel recompilation with a dynamically
dispatched observer alongside the inlined ones).
"""

import random

import pytest

from repro.cache.arrays import (FullyAssociativeArray, SetAssociativeArray,
                                ZCacheArray)
from repro.cache.cache import PartitionedCache
from repro.cache.events import CacheObserver
from repro.core.futility import LRURanking
from repro.core.schemes.base import available_schemes, make_scheme

LINES = 256
WAYS = 8
PARTS = 2
ACCESSES = 2_000


class OccupancyAuditor(CacheObserver):
    """Recounts the owner array on every size-changing event."""

    def __init__(self, cache: PartitionedCache) -> None:
        self.cache = cache
        self.checks = 0

    def _audit(self) -> None:
        cache = self.cache
        counts = [0] * cache.num_partitions
        resident = 0
        for idx in range(cache.num_lines):
            p = cache.owner[idx]
            if p >= 0:
                counts[p] += 1
                resident += 1
        assert counts == list(cache.actual_sizes), (
            f"owner-array recount {counts} != actual_sizes "
            f"{list(cache.actual_sizes)} after {self.checks} audits")
        assert resident == cache._resident
        self.checks += 1

    def on_cache_evict(self, idx, part, futility, dirty):
        self._audit()

    def on_cache_relocate(self, src, dst):
        self._audit()

    def on_cache_flush(self, idx, part, dirty):
        self._audit()


def _build(scheme_name: str) -> PartitionedCache:
    scheme = make_scheme(scheme_name)
    if not scheme.uses_candidates:
        array = FullyAssociativeArray(LINES)
    elif scheme_name == "fs-feedback":
        # Exercise the relocation path too: zcache walks move blocks.
        array = ZCacheArray(LINES, 4, WAYS)
    else:
        array = SetAssociativeArray(LINES, WAYS)
    return PartitionedCache(array, LRURanking(), scheme, PARTS)


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_occupancy_matches_owner_recount(scheme_name):
    cache = _build(scheme_name)
    auditor = OccupancyAuditor(cache)
    cache.events.subscribe(auditor)
    rng = random.Random(1234)
    randrange = rng.randrange
    for _ in range(ACCESSES):
        part = randrange(PARTS)
        addr = part * 10**9 + randrange(LINES)
        cache.access(addr, part, is_write=randrange(4) == 0)
    assert auditor.checks > 0, "workload never evicted or relocated"
    # Mid-run retarget: resizing paths (flushes for placement schemes,
    # smooth resizing for replacement schemes) must keep the books too.
    cache.set_targets([LINES * 3 // 4, LINES - LINES * 3 // 4])
    for _ in range(ACCESSES // 2):
        part = randrange(PARTS)
        addr = part * 10**9 + randrange(LINES)
        cache.access(addr, part)
    cache.check_invariants()

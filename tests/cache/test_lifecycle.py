"""Partition lifecycle: create/retire/recreate, kernel byte-identity,
and occupancy conservation.

Two properties anchor this suite:

* **Byte-identity** — a cache that never sees a lifecycle event compiles
  the exact same access kernel source as before the control plane
  existed (the retired-partition guard is emitted only while a retired
  partition exists), so every pre-refactor golden hash still gates the
  zero-event path.
* **Conservation** — retiring a partition flushes nothing: its lines
  become orphans drained by normal replacement, and the occupancy books
  (``actual_sizes`` vs an owner-array recount) balance after every
  create/retire/recreate step for every registered scheme.
"""

import random

import pytest

from repro.cache.arrays import (FullyAssociativeArray, SetAssociativeArray,
                                ZCacheArray)
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.base import available_schemes, make_scheme
from repro.errors import ConfigurationError

LINES = 256
WAYS = 8

#: Schemes that can grow online (way-partition needs one physical way
#: per partition and rejects growth past the way count, tested apart).
GROWABLE = [name for name in available_schemes() if name != "way-partition"]


def _build(scheme_name: str, parts: int = 2) -> PartitionedCache:
    scheme = make_scheme(scheme_name)
    if not scheme.uses_candidates:
        array = FullyAssociativeArray(LINES)
    elif scheme_name == "fs-feedback":
        array = ZCacheArray(LINES, 4, WAYS)
    else:
        array = SetAssociativeArray(LINES, WAYS)
    return PartitionedCache(array, LRURanking(), scheme, parts)


def _drive(cache: PartitionedCache, parts, accesses: int, seed: int) -> None:
    rng = random.Random(seed)
    randrange = rng.randrange
    parts = list(parts)
    for _ in range(accesses):
        part = parts[randrange(len(parts))]
        cache.access(part * 10**9 + randrange(LINES), part)


def _recount(cache: PartitionedCache):
    counts = [0] * cache.num_partitions
    for idx in range(cache.num_lines):
        p = cache.owner[idx]
        if p >= 0:
            counts[p] += 1
    return counts


# -- byte-identity ------------------------------------------------------------

@pytest.mark.parametrize("scheme_name", available_schemes())
def test_zero_lifecycle_kernel_has_no_retired_guard(scheme_name):
    cache = _build(scheme_name)
    assert "retired" not in cache.access.__kernel_source__
    # Plain retargets (the pre-existing API) must not change that.
    cache.set_targets([LINES * 3 // 4, LINES - LINES * 3 // 4])
    assert "retired" not in cache.access.__kernel_source__


@pytest.mark.parametrize("scheme_name", GROWABLE)
def test_retired_guard_appears_and_disappears(scheme_name):
    cache = _build(scheme_name)
    part = cache.create_partition(target=0)
    cache.retire_partition(part)
    assert "retired" in cache.access.__kernel_source__
    # Drain the (empty) retired slot and reuse it: no partition is
    # retired any more, so the guard must compile away again.
    reused = cache.create_partition(target=0)
    assert reused == part
    assert "retired" not in cache.access.__kernel_source__


def test_fresh_caches_compile_identical_kernels():
    a, b = _build("fs"), _build("fs")
    assert a.access.__kernel_source__ == b.access.__kernel_source__


# -- control-plane semantics --------------------------------------------------

def test_create_partition_grows_all_vectors():
    cache = _build("fs-feedback")
    part = cache.create_partition(target=0)
    assert part == 2
    assert cache.num_partitions == 3
    assert len(cache.targets) == 3
    assert len(cache.actual_sizes) == 3
    assert cache.stats.num_partitions == 3
    assert cache.active_partitions() == [0, 1, 2]
    cache.check_invariants()


def test_create_partition_rejects_negative_target():
    cache = _build("fs")
    with pytest.raises(ConfigurationError, match="target"):
        cache.create_partition(target=-1)


def test_retire_requires_a_survivor():
    cache = _build("fs")
    cache.retire_partition(1)
    with pytest.raises(ConfigurationError, match="last active"):
        cache.retire_partition(0)


def test_retire_twice_rejected():
    cache = _build("fs")
    cache.retire_partition(1)
    with pytest.raises(ConfigurationError, match="already retired"):
        cache.retire_partition(1)


def test_retired_partition_rejects_insertions():
    cache = _build("fs")
    _drive(cache, [0, 1], 500, seed=7)
    cache.retire_partition(1)
    cache.access(10**9 + 1, 0)  # survivors still run
    with pytest.raises(ConfigurationError, match="retired"):
        cache.access(10**9 + 999, 1)


def test_way_partition_rejects_growth_past_ways():
    scheme = make_scheme("way-partition")
    cache = PartitionedCache(
        SetAssociativeArray(LINES, 4), LRURanking(), scheme, 4)
    with pytest.raises(ConfigurationError, match="way"):
        cache.create_partition()


def test_lifecycle_log_records_every_event():
    cache = _build("fs")
    cache.set_targets([200, 56])
    part = cache.create_partition(target=0)
    cache.retire_partition(part)
    kinds = [(row["event"], row["part"]) for row in cache.lifecycle_log]
    assert kinds == [("retarget", -1), ("create", 2), ("retire", 2)]
    assert [row["seq"] for row in cache.lifecycle_log] == [0, 1, 2]
    # Each row snapshots the full target vector at that moment.
    assert cache.lifecycle_log[1]["targets"] == [200, 56, 0]
    assert cache.lifecycle_log[2]["targets"][2] == 0


# -- conservation: create -> retire -> drain -> recreate ----------------------

@pytest.mark.parametrize("scheme_name", GROWABLE)
def test_create_retire_recreate_conserves_occupancy(scheme_name):
    cache = _build(scheme_name)
    _drive(cache, [0, 1], 1_500, seed=42)
    assert _recount(cache) == list(cache.actual_sizes)

    part = cache.create_partition(target=0)
    third = LINES // 3
    cache.set_targets([third, third, LINES - 2 * third])
    _drive(cache, [0, 1, part], 1_500, seed=43)
    assert _recount(cache) == list(cache.actual_sizes)
    assert cache.actual_sizes[part] > 0

    # Retirement flushes nothing: the books balance immediately and the
    # orphans are still resident.
    before = list(cache.actual_sizes)
    flushes_before = cache.stats.flushes
    cache.retire_partition(part)
    assert list(cache.actual_sizes) == before
    assert cache.stats.flushes == flushes_before
    assert _recount(cache) == before

    # Re-apportion the freed capacity (what the scenario engine does on
    # departure): survivors must be under quota to claim orphan lines —
    # quota-driven schemes like CQVP never steal for an over-quota
    # inserter.
    cache.set_targets([LINES // 2, LINES - LINES // 2, 0])

    # Under survivor traffic the orphans drain monotonically to zero.
    last = cache.actual_sizes[part]
    rng = random.Random(44)
    for _ in range(300):
        for _ in range(100):
            p = rng.randrange(2)
            cache.access(p * 10**9 + rng.randrange(LINES), p)
        now = cache.actual_sizes[part]
        assert now <= last, "retired occupancy must never grow"
        last = now
        if now == 0:
            break
    assert cache.actual_sizes[part] == 0, (
        f"{scheme_name}: retired partition never drained")
    assert _recount(cache) == list(cache.actual_sizes)

    # A drained retired slot is reused instead of growing the vectors.
    reused = cache.create_partition()
    assert reused == part
    assert cache.num_partitions == 3
    cache.set_targets([LINES // 2, LINES // 4, LINES // 4])
    _drive(cache, [0, 1, reused], 800, seed=45)
    assert _recount(cache) == list(cache.actual_sizes)
    cache.check_invariants()


def test_undrained_slot_is_not_reused():
    cache = _build("fs")
    part = cache.create_partition()
    cache.set_targets([LINES // 4, LINES // 4, LINES // 2])
    _drive(cache, [part], 500, seed=5)
    assert cache.actual_sizes[part] > 0
    cache.retire_partition(part)
    # Still holding orphans: a new arrival must get a fresh slot.
    fresh = cache.create_partition()
    assert fresh == cache.num_partitions - 1
    assert fresh != part


# -- observers ----------------------------------------------------------------

def test_timeseries_recorder_grows_with_partitions():
    from repro.obs.timeseries import TimeSeriesRecorder

    cache = _build("fs")
    recorder = TimeSeriesRecorder(interval=64).attach(cache)
    cache.events.subscribe(recorder)
    _drive(cache, [0, 1], 200, seed=9)
    part = cache.create_partition(target=0)
    cache.set_targets([LINES // 2, LINES // 4, LINES // 4])
    _drive(cache, [0, 1, part], 200, seed=10)
    parts_seen = {row["part"] for row in recorder.rows()}
    assert part in parts_seen
    # Rows sampled after the growth carry the new partition every window.
    last_access = max(row["access"] for row in recorder.rows())
    assert {row["part"] for row in recorder.rows()
            if row["access"] == last_access} == {0, 1, 2}


def test_stats_alias_sees_new_partition():
    cache = _build("fs")
    part = cache.create_partition(target=0)
    cache.set_targets([LINES // 2, LINES // 4, LINES // 4])
    _drive(cache, [part], 100, seed=11)
    assert cache.stats.misses[part] > 0
    assert cache.stats.hits[part] + cache.stats.misses[part] == 100

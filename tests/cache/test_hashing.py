"""Tests for cache index hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hashing import (
    H3Hash,
    IdentityHash,
    XorFoldHash,
    make_hash,
)
from repro.errors import ConfigurationError


@pytest.mark.parametrize("cls", [IdentityHash, XorFoldHash, H3Hash])
def test_rejects_nonpositive_buckets(cls):
    with pytest.raises(ConfigurationError):
        cls(0)


@pytest.mark.parametrize("cls", [XorFoldHash, H3Hash])
def test_bit_mixers_require_power_of_two(cls):
    with pytest.raises(ConfigurationError):
        cls(12)


@pytest.mark.parametrize("kind", ["identity", "xor", "h3"])
def test_make_hash(kind):
    h = make_hash(kind, 64, seed=3)
    assert h.buckets == 64
    assert 0 <= h(12345) < 64


def test_make_hash_unknown():
    with pytest.raises(ConfigurationError):
        make_hash("sha256", 64)


@pytest.mark.parametrize("kind", ["identity", "xor", "h3"])
@given(addr=st.integers(0, 2**48 - 1))
@settings(max_examples=100)
def test_output_in_range_and_deterministic(kind, addr):
    h = make_hash(kind, 128, seed=1)
    out = h(addr)
    assert 0 <= out < 128
    assert h(addr) == out


def test_h3_seed_changes_function():
    a, b = H3Hash(256, seed=0), H3Hash(256, seed=1)
    outputs_differ = any(a(x) != b(x) for x in range(200))
    assert outputs_differ


def test_h3_same_seed_same_function():
    a, b = H3Hash(256, seed=7), H3Hash(256, seed=7)
    assert all(a(x) == b(x) for x in range(200))


def test_identity_is_modulo():
    h = IdentityHash(100)
    assert h(250) == 50


def test_xor_fold_spreads_strided_addresses():
    """XOR folding must not collapse a large-stride stream onto one bucket
    the way identity indexing does."""
    buckets = 64
    stride = buckets  # pathological for identity
    identity = IdentityHash(buckets)
    xor = XorFoldHash(buckets)
    identity_buckets = {identity(i * stride) for i in range(256)}
    xor_buckets = {xor(i * stride) for i in range(256)}
    assert len(identity_buckets) == 1
    assert len(xor_buckets) > buckets // 2


def test_h3_uniformity():
    """H3 over sequential addresses should populate buckets near-uniformly."""
    buckets = 32
    h = H3Hash(buckets, seed=11)
    counts = [0] * buckets
    samples = 3200
    for addr in range(samples):
        counts[h(addr)] += 1
    expected = samples / buckets
    assert max(counts) < expected * 2
    assert min(counts) > expected / 2


def test_single_bucket_hashes():
    for kind in ("identity", "xor", "h3"):
        h = make_hash(kind, 1)
        assert h(123456789) == 0

"""Tests for the PartitionedCache engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.arrays import (
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.cache.cache import PartitionedCache
from repro.core.futility import (
    CoarseTimestampLRURanking,
    LRURanking,
    OPTRanking,
)
from repro.core.schemes.full_assoc import FullAssocScheme
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.core.schemes.unpartitioned import UnpartitionedScheme
from repro.errors import ConfigurationError
from tests.conftest import drive_uniform


def make_pf_cache(array, **kwargs):
    return PartitionedCache(array, LRURanking(), PartitioningFirstScheme(),
                            2, **kwargs)


class TestConstruction:
    def test_default_targets_equal_split(self):
        c = make_pf_cache(SetAssociativeArray(256, 16))
        assert c.targets == [128, 128]

    def test_default_targets_uneven(self):
        c = PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                             PartitioningFirstScheme(), 3)
        assert sum(c.targets) == 256
        assert max(c.targets) - min(c.targets) <= 1

    def test_invalid_partition_count(self):
        with pytest.raises(ConfigurationError):
            PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                             PartitioningFirstScheme(), 0)

    def test_target_validation(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        with pytest.raises(ConfigurationError):
            c.set_targets([100])          # wrong length
        with pytest.raises(ConfigurationError):
            c.set_targets([-1, 65])       # negative
        with pytest.raises(ConfigurationError):
            c.set_targets([64, 64])       # exceeds capacity

    def test_scheme_rebind_rejected(self):
        scheme = PartitioningFirstScheme()
        PartitionedCache(SetAssociativeArray(64, 4), LRURanking(), scheme, 1)
        with pytest.raises(ConfigurationError):
            PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                             scheme, 1)

    def test_full_assoc_scheme_needs_free_slot_array(self):
        with pytest.raises(ConfigurationError):
            PartitionedCache(SetAssociativeArray(64, 4), LRURanking(),
                             FullAssocScheme(), 1)


class TestAccessSemantics:
    def test_miss_then_hit(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        assert c.access(42, 0) is False
        assert c.access(42, 0) is True
        assert c.stats.hits[0] == 1
        assert c.stats.misses[0] == 1
        assert c.occupancy(0) == 1
        assert c.contains(42)

    def test_insertion_counted(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        c.access(1, 0)
        c.access(2, 1)
        assert c.stats.insertions == [1, 1]
        assert c.actual_sizes == [1, 1]

    def test_eviction_updates_sizes(self):
        # Tiny direct-mapped-like config forces evictions quickly.
        c = make_pf_cache(SetAssociativeArray(4, 4))
        for addr in range(8):
            c.access(addr, 0)
        assert c.actual_sizes[0] == 4
        assert c.stats.evictions[0] == 4
        c.check_invariants()

    def test_reset_stats_preserves_contents(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        c.access(7, 0)
        c.reset_stats()
        assert c.stats.accesses == 0
        assert c.access(7, 0) is True  # line still resident

    def test_eviction_futility_recorded(self):
        c = make_pf_cache(SetAssociativeArray(4, 4))
        for addr in range(6):
            c.access(addr, 0)
        samples = c.stats.eviction_futility_samples(0)
        assert len(samples) == 2
        # PF with one partition evicts the LRU line: futility 1.
        assert all(s == pytest.approx(1.0) for s in samples)


class TestInvalidate:
    def test_invalidate_counts_flush_not_eviction(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        c.access(3, 0)
        idx = c.array.lookup(3)
        c.invalidate_index(idx)
        assert not c.contains(3)
        assert c.stats.flushes == 1
        assert c.stats.evictions == [0, 0]
        assert c.actual_sizes[0] == 0
        c.check_invariants()

    def test_invalidate_empty_slot_is_noop(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        c.invalidate_index(5)
        assert c.stats.flushes == 0


class TestReferenceRanking:
    def test_exact_ranking_reused(self):
        c = make_pf_cache(SetAssociativeArray(64, 4))
        assert c.reference is c.ranking

    def test_coarse_ts_gets_lru_reference(self):
        c = PartitionedCache(SetAssociativeArray(64, 4),
                             CoarseTimestampLRURanking(),
                             PartitioningFirstScheme(), 2)
        assert isinstance(c.reference, LRURanking)
        drive_uniform(c, 500, address_space=100)
        c.check_invariants()

    def test_reference_disabled(self):
        c = PartitionedCache(SetAssociativeArray(64, 4),
                             CoarseTimestampLRURanking(),
                             PartitioningFirstScheme(), 2,
                             track_eviction_futility=False)
        assert c.reference is None
        drive_uniform(c, 300, address_space=100)


class TestOptIntegration:
    def test_opt_requires_next_use(self):
        c = PartitionedCache(SetAssociativeArray(64, 4), OPTRanking(),
                             PartitioningFirstScheme(), 1)
        with pytest.raises(ConfigurationError):
            c.access(1, 0)

    def test_opt_with_next_use(self):
        c = PartitionedCache(SetAssociativeArray(64, 4), OPTRanking(),
                             PartitioningFirstScheme(), 1)
        addrs = [1, 2, 1, 3, 2, 1]
        from repro.trace.access import annotate_next_use
        nu = annotate_next_use(addrs)
        for i, a in enumerate(addrs):
            c.access(a, 0, next_use=nu[i])
        c.check_invariants()
        assert c.stats.hits[0] == 3


@pytest.mark.parametrize("array_factory,min_fill", [
    (lambda: SetAssociativeArray(128, 8), 1.0),
    (lambda: SkewAssociativeArray(128, 4), 1.0),
    # A zcache fills a slot only when it surfaces in some walk, so a few
    # slots can lag behind; near-full is the guarantee.
    (lambda: ZCacheArray(128, 4, 12), 0.95),
    (lambda: RandomCandidatesArray(128, 8, seed=3), 1.0),
])
def test_invariants_hold_under_load(array_factory, min_fill):
    c = make_pf_cache(array_factory())
    drive_uniform(c, 3000, address_space=400, seed=7)
    c.check_invariants()
    assert sum(c.actual_sizes) <= c.num_lines
    assert sum(c.actual_sizes) >= min_fill * c.num_lines


def test_zcache_relocation_preserves_metadata():
    """After zcache relocations, owners and ranking state must follow the
    moved blocks (regression for the on_move plumbing)."""
    c = PartitionedCache(ZCacheArray(64, 4, 16, hash_seed=5), LRURanking(),
                         PartitioningFirstScheme(), 2)
    rng = random.Random(11)
    for _ in range(2000):
        part = rng.randrange(2)
        c.access(part * 10**6 + rng.randrange(120), part)
    c.check_invariants()


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 60)),
                min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_property_occupancy_conservation(accesses):
    """Occupancy accounting matches ground truth for arbitrary access
    sequences (partition address spaces disjoint)."""
    c = make_pf_cache(SetAssociativeArray(32, 4))
    for part, a in accesses:
        c.access(part * 1000 + a, part)
    c.check_invariants()
    assert c.stats.total_misses() == sum(c.stats.insertions)
    assert sum(c.stats.insertions) - sum(c.stats.evictions) == \
        sum(c.actual_sizes)


def test_unpartitioned_scheme_allows_takeover():
    """Without partition enforcement a high-traffic thread squeezes out a
    low-traffic one (the motivating interference problem)."""
    c = PartitionedCache(SetAssociativeArray(128, 8), LRURanking(),
                         UnpartitionedScheme(), 2)
    rng = random.Random(3)
    # Thread 0 touches a small set once; thread 1 streams heavily.
    for a in range(20):
        c.access(a, 0)
    for i in range(5000):
        c.access(10**6 + i, 1)
    assert c.actual_sizes[1] > c.actual_sizes[0]
    assert c.actual_sizes[0] < 20

"""Tests for CacheStats."""

import math

import pytest

from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError


def test_validation():
    with pytest.raises(ConfigurationError):
        CacheStats(0)
    with pytest.raises(ConfigurationError):
        CacheStats(2, occupancy_sample_period=0)
    with pytest.raises(ConfigurationError):
        CacheStats(2, deviation_partitions=[5])


def test_counters():
    s = CacheStats(2, occupancy_sample_period=1)
    sizes = [3, 5]
    s.record_access(0, True, sizes)
    s.record_access(0, False, sizes)
    s.record_access(1, False, sizes)
    s.record_insertion(0)
    s.record_eviction(1, 0.5)
    assert s.hits == [1, 0]
    assert s.misses == [1, 1]
    assert s.insertions == [1, 0]
    assert s.evictions == [0, 1]
    assert s.accesses == 3
    assert s.hit_rate(0) == 0.5
    assert s.hit_rate(1) == 0.0
    assert s.hit_rate() == pytest.approx(1 / 3)
    assert s.miss_rate() == pytest.approx(2 / 3)


def test_rates_with_no_accesses():
    s = CacheStats(1)
    assert s.hit_rate() == 0.0
    assert s.miss_rate(0) == 0.0


def test_fractions():
    s = CacheStats(2)
    for _ in range(3):
        s.record_insertion(0)
    s.record_insertion(1)
    s.record_eviction(0, None)
    s.record_eviction(1, None)
    assert s.insertion_fractions() == [0.75, 0.25]
    assert s.eviction_fractions() == [0.5, 0.5]


def test_fractions_empty():
    s = CacheStats(3)
    assert s.insertion_fractions() == [0.0, 0.0, 0.0]
    assert s.eviction_fractions() == [0.0, 0.0, 0.0]


def test_aef():
    s = CacheStats(1)
    s.record_eviction(0, 0.2)
    s.record_eviction(0, 0.8)
    assert s.aef(0) == pytest.approx(0.5)
    assert math.isnan(CacheStats(1).aef(0))


def test_aef_disabled():
    s = CacheStats(1, track_eviction_futility=False)
    s.record_eviction(0, 0.5)
    with pytest.raises(ConfigurationError):
        s.aef(0)


def test_occupancy_sampling():
    s = CacheStats(2, occupancy_sample_period=2)
    s.record_access(0, True, [10, 20])   # not sampled
    s.record_access(0, True, [10, 20])   # sampled
    s.record_access(0, True, [30, 40])   # not sampled
    s.record_access(0, True, [30, 40])   # sampled
    assert s.mean_occupancy(0) == pytest.approx(20.0)
    assert s.mean_occupancy(1) == pytest.approx(30.0)


def test_occupancy_without_samples_is_nan():
    assert math.isnan(CacheStats(1).mean_occupancy(0))


def test_deviation_tracking():
    s = CacheStats(2, deviation_partitions=[1])
    s.record_deviations([5, 9], [4, 4])
    s.record_deviations([5, 1], [4, 4])
    assert list(s.deviation_samples(1)) == [5, -3]
    with pytest.raises(ConfigurationError):
        s.deviation_samples(0)


def test_reset():
    s = CacheStats(1, deviation_partitions=[0], occupancy_sample_period=1)
    s.record_access(0, False, [1])
    s.record_insertion(0)
    s.record_eviction(0, 0.9)
    s.record_deviations([5], [4])
    s.record_flush()
    s.reset()
    assert s.accesses == 0
    assert s.hits == [0]
    assert s.misses == [0]
    assert s.flushes == 0
    assert len(s.eviction_futility_samples(0)) == 0
    assert len(s.deviation_samples(0)) == 0
    assert math.isnan(s.mean_occupancy(0))


def test_summary():
    s = CacheStats(2)
    s.record_access(0, False, [0, 0])
    s.record_insertion(0)
    s.record_eviction(1, 0.7)
    out = s.summary()
    assert out["accesses"] == 1
    assert out["insertions"] == [1, 0]
    assert out["aef"][1] == pytest.approx(0.7)
    assert out["aef"][0] is None

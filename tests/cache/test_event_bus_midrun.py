"""Mid-run observer churn must never perturb cache behavior.

Attaching and detaching observers *during* a run recompiles the access
kernel (the bus's ``on_change`` hook), swapping between the bare
fast path, the inlined well-known observers
(:class:`~repro.obs.timeseries.TimeSeriesRecorder`) and the generic
dispatch path.  For every registered scheme the per-access hit/miss
stream and the final statistics must be byte-identical to an
observer-free run — observation is read-only by construction.
"""

import random

import pytest

from repro.cache.arrays import (FullyAssociativeArray, SetAssociativeArray,
                                ZCacheArray)
from repro.cache.cache import PartitionedCache
from repro.cache.events import CacheObserver
from repro.core.futility import LRURanking
from repro.core.schemes.base import available_schemes, make_scheme
from repro.obs import TimeSeriesRecorder

LINES = 256
WAYS = 8
PARTS = 2
ACCESSES = 1_800


class CountingObserver(CacheObserver):
    """Generic (dispatch-path) observer tallying every event kind."""

    def __init__(self) -> None:
        self.events = 0

    def on_cache_hit(self, idx, part, next_use):
        self.events += 1

    def on_cache_miss(self, addr, part):
        self.events += 1

    def on_cache_evict(self, idx, part, futility, dirty):
        self.events += 1

    def on_cache_insert(self, idx, part, next_use, evicted):
        self.events += 1


def _build(scheme_name: str) -> PartitionedCache:
    scheme = make_scheme(scheme_name)
    if not scheme.uses_candidates:
        array = FullyAssociativeArray(LINES)
    elif scheme_name == "fs-feedback":
        array = ZCacheArray(LINES, 4, WAYS)
    else:
        array = SetAssociativeArray(LINES, WAYS)
    return PartitionedCache(array, LRURanking(), scheme, PARTS)


def _workload():
    """The deterministic access stream shared by every run."""
    rng = random.Random(20140613)
    return [(p * 10**9 + rng.randrange(LINES), p, rng.randrange(4) == 0)
            for p in (rng.randrange(PARTS) for _ in range(ACCESSES))]


def _stats_tuple(cache: PartitionedCache):
    st = cache.stats
    return (tuple(st.hits), tuple(st.misses),
            tuple(st.insertions), tuple(st.evictions))


def _run(cache: PartitionedCache, workload, churn=None):
    """Drive ``workload``; ``churn`` maps access index -> thunk to run
    *between* accesses (subscribe/unsubscribe calls).  Returns the
    per-access hit/miss stream — the observable output byte-for-byte."""
    stream = []
    for i, (addr, part, is_write) in enumerate(workload):
        if churn and i in churn:
            churn[i]()
        stream.append(cache.access(addr, part, is_write=is_write))
    return stream


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_midrun_attach_detach_is_invisible(scheme_name):
    workload = _workload()

    baseline = _build(scheme_name)
    base_stream = _run(baseline, workload)
    base_kernel = baseline.access.__kernel_source__

    cache = _build(scheme_name)
    recorder = TimeSeriesRecorder(interval=64).attach(cache)
    generic = CountingObserver()
    kernels = {}

    def snap(tag):
        kernels[tag] = cache.access.__kernel_source__

    third, two_thirds = len(workload) // 3, 2 * len(workload) // 3
    churn = {
        third: lambda: (cache.events.subscribe(recorder),
                        cache.events.subscribe(generic), snap("attached")),
        two_thirds: lambda: (cache.events.unsubscribe(recorder),
                             cache.events.unsubscribe(generic),
                             snap("detached")),
    }
    stream = _run(cache, workload, churn)

    # Behavior: identical hit/miss stream and final books.
    assert stream == base_stream
    assert _stats_tuple(cache) == _stats_tuple(baseline)
    cache.check_invariants()

    # Observation really happened through both paths.
    assert recorder.rows(), "inlined recorder never sampled"
    assert generic.events > 0, "dispatch observer never fired"

    # Compilation: subscribing swapped in an instrumented kernel
    # (inlined ts_* counters + generic dispatch), detaching restored
    # the exact observer-free kernel.
    assert "ts_acc" in kernels["attached"]
    assert kernels["attached"] != base_kernel
    assert "ts_" not in kernels["detached"]
    assert kernels["detached"] == base_kernel


def test_subscribed_context_manager_restores_kernel():
    cache = _build("fs-feedback")
    clean = cache.access.__kernel_source__
    recorder = TimeSeriesRecorder(interval=32).attach(cache)
    with cache.events.subscribed(recorder) as bus:
        assert bus is cache.events
        assert "ts_acc" in cache.access.__kernel_source__
        for i in range(200):
            cache.access(i % LINES, i % PARTS)
    assert cache.access.__kernel_source__ == clean
    assert recorder.rows()


def test_subscribed_unwinds_on_error():
    cache = _build("fs")
    clean = cache.access.__kernel_source__
    with pytest.raises(RuntimeError):
        with cache.events.subscribed(CountingObserver()):
            raise RuntimeError("boom")
    assert cache.access.__kernel_source__ == clean

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache.arrays import (
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
)
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme


def drive_uniform(cache: PartitionedCache, accesses: int, *,
                  num_partitions: int = None, address_space: int = 1000,
                  seed: int = 0) -> PartitionedCache:
    """Drive a cache with uniform random accesses, one address space per
    partition; returns the cache for chaining."""
    n = num_partitions if num_partitions is not None else cache.num_partitions
    rng = random.Random(seed)
    for _ in range(accesses):
        part = rng.randrange(n)
        addr = part * 10**9 + rng.randrange(address_space)
        cache.access(addr, part)
    return cache


@pytest.fixture
def small_pf_cache() -> PartitionedCache:
    """A 256-line, 2-partition PF cache on a set-associative array."""
    return PartitionedCache(SetAssociativeArray(256, 16), LRURanking(),
                            PartitioningFirstScheme(), 2)


@pytest.fixture
def random_array_cache() -> PartitionedCache:
    """A 256-line, 2-partition PF cache on a random-candidates array."""
    return PartitionedCache(RandomCandidatesArray(256, 8, seed=1),
                            LRURanking(), PartitioningFirstScheme(), 2)

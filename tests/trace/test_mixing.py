"""Tests for multiprogrammed trace feeding."""

import pytest

from repro.cache.arrays import RandomCandidatesArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.errors import ConfigurationError, TraceError
from repro.trace.access import Trace
from repro.trace.mixing import (
    TraceCursor,
    interleave_round_robin,
    run_insertion_rate_controlled,
    run_round_robin,
)


def stream_trace(base, n=100):
    return Trace(range(base, base + n))


class TestTraceCursor:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            TraceCursor(Trace([]))

    def test_iteration_and_wrap(self):
        c = TraceCursor(Trace([1, 2, 3], gaps=[10, 20, 30]))
        assert c.next() == (1, None, 10)
        assert c.next() == (2, None, 20)
        assert c.next() == (3, None, 30)
        assert c.wraps == 1
        assert c.next() == (1, None, 10)
        assert c.total_accesses == 4

    def test_next_use_offsets_across_wraps(self):
        c = TraceCursor(Trace([1, 1]), with_next_use=True)
        _, nu0, _ = c.next()
        assert nu0 == 1
        _, nu1, _ = c.next()
        _, nu0b, _ = c.next()   # second pass: keys shifted by len(trace)
        assert nu0b == nu0 + 2
        # Keys stay strictly increasing for the same position over wraps.
        assert nu1 < nu0b or nu1 > nu0


class TestRoundRobin:
    def test_order(self):
        feed = interleave_round_robin([stream_trace(0), stream_trace(1000)],
                                      6)
        tids = [tid for tid, _, _ in feed]
        assert tids == [0, 1, 0, 1, 0, 1]

    def test_run_round_robin_drives_cache(self):
        cache = PartitionedCache(RandomCandidatesArray(64, 8, seed=0),
                                 LRURanking(), PartitioningFirstScheme(), 2)
        run_round_robin(cache, [stream_trace(0), stream_trace(10_000)], 200)
        assert cache.stats.accesses == 200
        assert cache.stats.misses[0] > 0
        assert cache.stats.misses[1] > 0

    def test_warmup_discards_stats(self):
        cache = PartitionedCache(RandomCandidatesArray(64, 8, seed=0),
                                 LRURanking(), PartitioningFirstScheme(), 2)
        run_round_robin(cache, [stream_trace(0), stream_trace(10_000)],
                        100, warmup=100)
        assert cache.stats.accesses == 100


class TestInsertionRateControl:
    def make_cache(self, lines=128):
        return PartitionedCache(RandomCandidatesArray(lines, 8, seed=1),
                                LRURanking(), PartitioningFirstScheme(), 2)

    def test_validation(self):
        cache = self.make_cache()
        with pytest.raises(TraceError):
            run_insertion_rate_controlled(cache, [stream_trace(0)],
                                          [0.5, 0.5], 10)
        with pytest.raises(ConfigurationError):
            run_insertion_rate_controlled(
                cache, [stream_trace(0), stream_trace(1000)], [0.5, 0.6], 10)

    def test_exact_insertion_shares(self):
        """The defining property: each partition's share of insertions is
        exactly the configured rate (up to sampling noise)."""
        cache = self.make_cache()
        run_insertion_rate_controlled(
            cache, [stream_trace(0, 100_000), stream_trace(10**7, 100_000)],
            [0.8, 0.2], 5_000, seed=3)
        fractions = cache.stats.insertion_fractions()
        assert fractions[0] == pytest.approx(0.8, abs=0.02)
        assert fractions[1] == pytest.approx(0.2, abs=0.02)

    def test_total_insertions(self):
        cache = self.make_cache()
        run_insertion_rate_controlled(
            cache, [stream_trace(0, 10_000), stream_trace(10**7, 10_000)],
            [0.5, 0.5], 500, seed=1)
        assert sum(cache.stats.insertions) == 500

    def test_warmup_resets_stats(self):
        cache = self.make_cache()
        run_insertion_rate_controlled(
            cache, [stream_trace(0, 10_000), stream_trace(10**7, 10_000)],
            [0.5, 0.5], 300, warmup_insertions=100, seed=1)
        assert sum(cache.stats.insertions) == 300

    def test_prefill_seeds_targets(self):
        cache = self.make_cache()
        cache.set_targets([96, 32])
        run_insertion_rate_controlled(
            cache, [stream_trace(0, 10_000), stream_trace(10**7, 10_000)],
            [0.5, 0.5], 1, prefill=True, seed=1)
        # After the prefill both partitions were at target; a single
        # controlled insertion can move sizes by at most one line.
        assert abs(cache.actual_sizes[0] - 96) <= 1
        assert abs(cache.actual_sizes[1] - 32) <= 1

    def test_returns_issued_access_counts(self):
        cache = self.make_cache()
        issued = run_insertion_rate_controlled(
            cache, [stream_trace(0, 10_000), stream_trace(10**7, 10_000)],
            [0.5, 0.5], 200, seed=2)
        assert len(issued) == 2
        assert sum(issued) >= 200

"""Tests for the calibrated SPEC CPU2006 benchmark profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.spec import (
    BENCHMARKS,
    KB,
    MB,
    benchmark_names,
    benchmark_trace,
    get_profile,
    lines_for_bytes,
)

PAPER_SET = {"mcf", "omnetpp", "gromacs", "h264ref", "astar", "cactusadm",
             "libquantum", "lbm"}


def test_all_paper_benchmarks_modeled():
    assert set(benchmark_names()) == PAPER_SET


def test_lines_for_bytes():
    assert lines_for_bytes(MB) == 16384
    assert lines_for_bytes(512 * KB) == 8192


def test_get_profile_unknown():
    with pytest.raises(ConfigurationError):
        get_profile("gcc")


def test_traces_deterministic():
    a = benchmark_trace("mcf", 2000, seed=4)
    b = benchmark_trace("mcf", 2000, seed=4)
    assert list(a.addresses) == list(b.addresses)
    assert list(a.gaps) == list(b.gaps)


def test_seed_changes_trace():
    a = benchmark_trace("mcf", 2000, seed=1)
    b = benchmark_trace("mcf", 2000, seed=2)
    assert list(a.addresses) != list(b.addresses)


def test_benchmarks_have_distinct_streams():
    a = benchmark_trace("mcf", 1000, seed=0)
    b = benchmark_trace("astar", 1000, seed=0)
    assert list(a.addresses) != list(b.addresses)


def test_addr_base_separates_threads():
    a = benchmark_trace("mcf", 500, seed=0, addr_base=0)
    b = benchmark_trace("mcf", 500, seed=0, addr_base=1 << 40)
    assert set(a.addresses).isdisjoint(set(b.addresses))


def test_scale_shrinks_footprint():
    big = benchmark_trace("mcf", 20_000, seed=0, scale=1.0)
    small = benchmark_trace("mcf", 20_000, seed=0, scale=0.125)
    assert small.footprint() < big.footprint()


def test_scale_validation():
    with pytest.raises(ConfigurationError):
        benchmark_trace("mcf", 100, scale=0.0)


@pytest.mark.parametrize("name", sorted(PAPER_SET))
def test_every_profile_generates(name):
    t = benchmark_trace(name, 3_000, seed=1)
    assert len(t) == 3_000
    assert t.instructions > 3_000


def test_streaming_benchmarks_have_negligible_reuse():
    """lbm and libquantum are the paper's no-reuse workloads."""
    for name in ("lbm", "libquantum"):
        t = benchmark_trace(name, 10_000, seed=0)
        assert t.footprint() >= 9_500


def test_memory_intensity_ordering():
    """lbm is the most memory-intensive (lowest instructions per access),
    h264ref the least (Section VII-C roles)."""
    gaps = {name: BENCHMARKS[name].mean_gap for name in PAPER_SET}
    assert gaps["lbm"] == min(gaps.values())
    assert gaps["h264ref"] == max(gaps.values())
    assert gaps["mcf"] < gaps["gromacs"]


def test_gromacs_working_set_scale():
    """gromacs's reuse is concentrated well under ~40K lines (its ~256KB
    working-set role in the QoS experiments)."""
    t = benchmark_trace("gromacs", 30_000, seed=0)
    assert t.footprint() < 15_000


def test_mcf_reuse_spans_scales():
    """mcf touches a working set far larger than gromacs's at the same
    trace length (its cache-hungry, associativity-sensitive role)."""
    mcf = benchmark_trace("mcf", 30_000, seed=0)
    gromacs = benchmark_trace("gromacs", 30_000, seed=0)
    assert mcf.footprint() > 1.5 * gromacs.footprint()

"""Tests for Trace containers and next-use annotation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.access import Trace, annotate_next_use


def brute_force_next_use(addresses):
    n = len(addresses)
    out = []
    for i in range(n):
        for j in range(i + 1, n):
            if addresses[j] == addresses[i]:
                out.append(j)
                break
        else:
            out.append(n + i)
    return out


class TestAnnotateNextUse:
    def test_simple(self):
        assert list(annotate_next_use([1, 2, 1, 3])) == [2, 5, 6, 7]

    def test_empty(self):
        assert list(annotate_next_use([])) == []

    def test_all_unique(self):
        n = 5
        assert list(annotate_next_use(range(n))) == [n + i for i in range(n)]

    def test_sentinels_exceed_all_positions(self):
        nu = annotate_next_use([7, 7, 7])
        assert nu[0] == 1 and nu[1] == 2
        assert nu[2] >= 3

    @given(st.lists(st.integers(0, 9), max_size=200))
    @settings(max_examples=60)
    def test_property_matches_brute_force(self, addresses):
        assert list(annotate_next_use(addresses)) == \
            brute_force_next_use(addresses)

    @given(st.lists(st.integers(0, 20), max_size=100))
    @settings(max_examples=40)
    def test_property_strictly_greater_than_position(self, addresses):
        nu = annotate_next_use(addresses)
        assert all(nu[i] > i for i in range(len(addresses)))


class TestTrace:
    def test_defaults(self):
        t = Trace([1, 2, 3])
        assert len(t) == 3
        assert t[1] == 2
        assert list(t.gaps) == [1, 1, 1]
        assert t.instructions == 3

    def test_gap_length_mismatch(self):
        with pytest.raises(TraceError):
            Trace([1, 2], gaps=[1])

    def test_footprint(self):
        assert Trace([1, 2, 1, 3]).footprint() == 3

    def test_next_use_cached(self):
        t = Trace([1, 2, 1])
        assert t.next_use is t.next_use

    def test_slice(self):
        t = Trace([1, 2, 3, 4], gaps=[10, 20, 30, 40])
        s = t.slice(1, 3)
        assert list(s.addresses) == [2, 3]
        assert list(s.gaps) == [20, 30]
        with pytest.raises(TraceError):
            t.slice(3, 1)
        with pytest.raises(TraceError):
            t.slice(0, 9)

    def test_with_offset(self):
        t = Trace([1, 2]).with_offset(100)
        assert list(t.addresses) == [101, 102]

    def test_concatenate(self):
        t = Trace([1], gaps=[5]).concatenate(Trace([2], gaps=[7]))
        assert list(t.addresses) == [1, 2]
        assert t.instructions == 12

    def test_instructions_sum(self):
        t = Trace([1, 2, 3], gaps=[3, 4, 5])
        assert t.instructions == 12

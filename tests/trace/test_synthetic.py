"""Tests for the synthetic workload generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceError
from repro.trace.synthetic import (
    CyclicScanGenerator,
    ReuseProfile,
    SequentialStreamGenerator,
    StackDistanceGenerator,
    fixed,
    geometric,
    loguniform,
    uniform,
)


class TestComponents:
    def test_uniform_range(self):
        c = uniform(1.0, 5, 10)
        rng = random.Random(0)
        for _ in range(200):
            assert 5 <= c.sample(rng) < 10

    def test_loguniform_range(self):
        c = loguniform(1.0, 10, 1000)
        rng = random.Random(0)
        samples = [c.sample(rng) for _ in range(500)]
        assert all(10 <= s < 1000 for s in samples)
        # Log-uniform: roughly half the mass below the geometric midpoint.
        below = sum(1 for s in samples if s < 100)
        assert 150 < below < 350

    def test_geometric_mean(self):
        c = geometric(1.0, 50.0)
        rng = random.Random(1)
        samples = [c.sample(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(50.0, rel=0.15)

    def test_fixed(self):
        c = fixed(1.0, 42)
        assert c.sample(random.Random(0)) == 42

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform(0.0, 0, 5)
        with pytest.raises(ConfigurationError):
            uniform(1.0, 5, 5)
        with pytest.raises(ConfigurationError):
            loguniform(1.0, 0, 5)
        with pytest.raises(ConfigurationError):
            geometric(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            fixed(1.0, -1)


class TestReuseProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReuseProfile([], new_fraction=0.5)
        with pytest.raises(ConfigurationError):
            ReuseProfile([fixed(1.0, 1)], new_fraction=1.5)

    def test_pure_streaming_profile(self):
        p = ReuseProfile([], new_fraction=1.0)
        rng = random.Random(0)
        assert all(p.sample_depth(rng) is None for _ in range(50))

    def test_mixture_weights_respected(self):
        p = ReuseProfile([fixed(0.9, 1), fixed(0.1, 100)], new_fraction=0.0)
        rng = random.Random(2)
        counts = Counter(p.sample_depth(rng) for _ in range(5000))
        assert counts[1] / 5000 == pytest.approx(0.9, abs=0.03)


class TestStackDistanceGenerator:
    def test_length_and_determinism(self):
        gen = StackDistanceGenerator(
            ReuseProfile([geometric(1.0, 20)], new_fraction=0.1), seed=5)
        a = gen.generate(500)
        b = gen.generate(500)
        assert len(a) == 500
        assert list(a.addresses) == list(b.addresses)

    def test_negative_length(self):
        gen = StackDistanceGenerator(ReuseProfile([], new_fraction=1.0))
        with pytest.raises(TraceError):
            gen.generate(-1)

    def test_addr_base_offsets_space(self):
        gen = StackDistanceGenerator(ReuseProfile([], new_fraction=1.0),
                                     addr_base=10_000)
        t = gen.generate(10)
        assert min(t.addresses) >= 10_000

    def test_reuse_distance_distribution_matches_profile(self):
        """The emitted trace's empirical LRU stack distances must follow
        the sampled mixture (the generator's defining property)."""
        depth = 37
        gen = StackDistanceGenerator(
            ReuseProfile([fixed(1.0, depth)], new_fraction=0.02), seed=3)
        trace = gen.generate(8000)
        # Re-derive stack distances.
        stack = []
        reuse_depths = Counter()
        for addr in trace.addresses:
            if addr in stack:
                d = stack.index(addr)
                reuse_depths[d] += 1
                stack.remove(addr)
            stack.insert(0, addr)
        total_reuses = sum(reuse_depths.values())
        assert total_reuses > 0
        assert reuse_depths[depth] / total_reuses > 0.95

    def test_gap_mean(self):
        gen = StackDistanceGenerator(ReuseProfile([], new_fraction=1.0),
                                     mean_gap=40.0, seed=7)
        t = gen.generate(4000)
        mean = t.instructions / len(t)
        assert mean == pytest.approx(40.0, rel=0.15)

    def test_gap_of_one(self):
        gen = StackDistanceGenerator(ReuseProfile([], new_fraction=1.0),
                                     mean_gap=1.0)
        t = gen.generate(100)
        assert list(t.gaps) == [1] * 100

    def test_mean_gap_validation(self):
        with pytest.raises(ConfigurationError):
            StackDistanceGenerator(ReuseProfile([], new_fraction=1.0),
                                   mean_gap=0.5).generate(1)


class TestStreamGenerators:
    def test_sequential_all_unique(self):
        t = SequentialStreamGenerator(seed=1).generate(200)
        assert t.footprint() == 200

    def test_wrap(self):
        t = SequentialStreamGenerator(wrap=50, seed=1).generate(200)
        assert t.footprint() == 50
        assert t.addresses[0] == t.addresses[50]

    def test_wrap_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialStreamGenerator(wrap=0)

    def test_cyclic_scan(self):
        gen = CyclicScanGenerator(working_set=30, seed=2)
        t = gen.generate(90)
        assert t.footprint() == 30
        assert list(t.addresses[:30]) == list(t.addresses[30:60])


class TestPhasedGenerator:
    def make(self):
        from repro.trace.synthetic import PhasedGenerator
        low = SequentialStreamGenerator(wrap=20, addr_base=0, seed=1)
        high = SequentialStreamGenerator(wrap=20, addr_base=100_000, seed=2)
        return PhasedGenerator([(low, 0.5), (high, 0.5)], name="two-phase")

    def test_length_and_phases(self):
        t = self.make().generate(400)
        assert len(t) == 400
        assert t.name == "two-phase"
        # First half in the low region, second half high.
        assert max(t.addresses[:200]) < 100_000
        assert min(t.addresses[200:]) >= 100_000

    def test_fractions_normalized(self):
        from repro.trace.synthetic import PhasedGenerator
        gen = PhasedGenerator([
            (SequentialStreamGenerator(seed=1), 3),
            (SequentialStreamGenerator(addr_base=10**6, seed=2), 1)])
        t = gen.generate(100)
        low = sum(1 for a in t.addresses if a < 10**6)
        assert low == 75

    def test_validation(self):
        from repro.trace.synthetic import PhasedGenerator
        import pytest as _pytest
        with _pytest.raises(ConfigurationError):
            PhasedGenerator([])
        with _pytest.raises(ConfigurationError):
            PhasedGenerator([(SequentialStreamGenerator(), 0.0)])
        with _pytest.raises(TraceError):
            self.make().generate(-1)

    def test_simpoint_finds_the_phases(self):
        """The motivating use: SimPoint clustering recovers the phases."""
        from repro.trace.simpoint import select_regions
        t = self.make().generate(1000)
        regions = select_regions(t, interval=100, k=2)
        starts = sorted(r.start for r in regions)
        assert starts[0] < 500 <= starts[1]

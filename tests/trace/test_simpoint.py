"""Tests for SimPoint-style representative region selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.trace.access import Trace
from repro.trace.simpoint import (
    interval_features,
    kmeans,
    representative_trace,
    select_regions,
)


def phased_trace():
    """Two clearly distinct phases: low addresses then high addresses."""
    return Trace(list(range(0, 100)) * 5 + list(range(10_000, 10_100)) * 5)


class TestIntervalFeatures:
    def test_shape_and_normalization(self):
        f = interval_features(phased_trace(), interval=100, num_buckets=16)
        assert f.shape == (10, 16)
        assert np.allclose(f.sum(axis=1), 1.0)

    def test_partial_interval_dropped(self):
        t = Trace(range(250))
        f = interval_features(t, interval=100)
        assert f.shape[0] == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interval_features(phased_trace(), interval=0)
        with pytest.raises(TraceError):
            interval_features(Trace(range(10)), interval=100)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        f = interval_features(phased_trace(), interval=100, num_buckets=16)
        labels = kmeans(f, 2, seed=0)
        first, second = set(labels[:5]), set(labels[5:])
        assert len(first) == 1 and len(second) == 1
        assert first != second

    def test_deterministic(self):
        f = interval_features(phased_trace(), interval=100)
        assert np.array_equal(kmeans(f, 3, seed=5), kmeans(f, 3, seed=5))

    def test_k_clamped_to_points(self):
        f = np.eye(3)
        labels = kmeans(f, 10, seed=0)
        assert len(set(labels.tolist())) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.eye(2), 0)


class TestSelectRegions:
    def test_weights_sum_to_one(self):
        regions = select_regions(phased_trace(), interval=100, k=2)
        assert sum(r.weight for r in regions) == pytest.approx(1.0)
        assert regions == sorted(regions, key=lambda r: r.weight,
                                 reverse=True)

    def test_regions_cover_both_phases(self):
        t = phased_trace()
        regions = select_regions(t, interval=100, k=2)
        starts = sorted(r.start for r in regions)
        assert starts[0] < 500 <= starts[1]

    def test_representative_trace(self):
        t = phased_trace()
        regions = select_regions(t, interval=100, k=2)
        rep = representative_trace(t, regions)
        assert len(rep) == 200
        with pytest.raises(ConfigurationError):
            representative_trace(t, [])

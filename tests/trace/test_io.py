"""Tests for trace persistence."""

import pytest

from repro.errors import TraceError
from repro.trace.access import Trace
from repro.trace.io import load_trace, save_trace
from repro.trace.spec import benchmark_trace


def test_round_trip(tmp_path):
    original = Trace([5, 9, 5, 2], gaps=[10, 20, 30, 40], name="unit")
    path = save_trace(original, tmp_path / "t")
    assert path.suffix == ".npz"
    loaded = load_trace(path)
    assert list(loaded.addresses) == list(original.addresses)
    assert list(loaded.gaps) == list(original.gaps)
    assert loaded.name == "unit"


def test_round_trip_benchmark_trace(tmp_path):
    original = benchmark_trace("mcf", 2_000, seed=3)
    loaded = load_trace(save_trace(original, tmp_path / "mcf.npz"))
    assert list(loaded.addresses) == list(original.addresses)
    assert loaded.instructions == original.instructions
    assert loaded.name == "mcf"


def test_missing_file(tmp_path):
    with pytest.raises(TraceError):
        load_trace(tmp_path / "absent.npz")


def test_wrong_archive(tmp_path):
    import numpy as np
    path = tmp_path / "bogus.npz"
    np.savez(path, foo=np.arange(3))
    with pytest.raises(TraceError) as excinfo:
        load_trace(path)
    # The original KeyError is chained, not swallowed: the message names
    # the missing array and the cause survives for debugging.
    assert "missing" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, KeyError)


def test_large_addresses_preserved(tmp_path):
    original = Trace([2**40 + 7, 2**45], name="big")
    loaded = load_trace(save_trace(original, tmp_path / "big"))
    assert list(loaded.addresses) == [2**40 + 7, 2**45]

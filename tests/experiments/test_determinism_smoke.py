"""Determinism smoke test: the cache-soundness invariant, end to end.

The content-addressed result cache (:mod:`repro.runner.cache`) is only
sound if a cell's result is a pure function of its config + seed; the
byte-identical ``--jobs N`` guarantee additionally requires the
*serialized* form to be stable.  reprolint (DET001–DET003) approximates
this statically; this test checks it dynamically by running real cells
twice in-process — reseeding exactly as the worker pool does — and
comparing the pickled bytes the cache would store.
"""

import pickle

from repro.experiments import get_experiment
from repro.runner import cell_key
from repro.runner.pool import _seed_from_key


def _run_pickled(cell) -> bytes:
    """Execute one cell the way a pool worker would, returning the bytes
    :class:`repro.runner.cache.ResultCache` would persist."""
    _seed_from_key(cell_key(cell))
    return pickle.dumps(cell.run(), protocol=pickle.HIGHEST_PROTOCOL)


def test_fig3_cells_are_byte_identical_across_reruns():
    spec = get_experiment("fig3")
    config = spec.config("smoke")
    cells = spec.cells(config)
    assert cells, "fig3 smoke config must decompose into at least one cell"
    for cell in cells:
        assert _run_pickled(cell) == _run_pickled(cell), (
            f"cell {cell.label} is not a pure function of config + seed; "
            f"the result cache would be unsound")


def test_fig3_cell_keys_are_stable_across_reruns():
    spec = get_experiment("fig3")
    config = spec.config("smoke")
    first = [cell_key(c) for c in spec.cells(config)]
    second = [cell_key(c) for c in spec.cells(config)]
    assert first == second


def test_fig3_formatted_output_is_byte_identical():
    spec = get_experiment("fig3")
    config = spec.config("smoke")
    assert spec.format(spec.run(config)) == spec.format(spec.run(config))

"""Tests for the shared experiment infrastructure."""

import pytest

from repro.cache.arrays import (
    DirectMappedArray,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
)
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking, OPTRanking
from repro.core.schemes.partitioning_first import PartitioningFirstScheme
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ADDRESS_SPACING,
    build_array,
    build_cache,
    duplicated_traces,
    format_cdf_summary,
    format_table,
    mixed_traces,
    prefill_to_targets,
)
from repro.trace.access import Trace


class TestBuildArray:
    @pytest.mark.parametrize("kind,cls", [
        ("set-assoc", SetAssociativeArray),
        ("random", RandomCandidatesArray),
        ("full-assoc", FullyAssociativeArray),
        ("direct-mapped", DirectMappedArray),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(build_array(kind, 64), cls)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            build_array("victim-cache", 64)


class TestBuildCache:
    def test_accepts_names(self):
        cache = build_cache(build_array("set-assoc", 64), "lru", "pf", 2)
        assert isinstance(cache, PartitionedCache)
        assert cache.ranking.name == "lru"
        assert cache.scheme.name == "pf"

    def test_accepts_instances(self):
        cache = build_cache(build_array("set-assoc", 64), LRURanking(),
                            PartitioningFirstScheme(), 1)
        assert cache.num_partitions == 1


class TestTraceBuilders:
    def test_duplicated_traces_disjoint_spaces(self):
        traces = duplicated_traces("mcf", 3, 500, scale=0.1)
        spaces = [set(t.addresses) for t in traces]
        assert spaces[0].isdisjoint(spaces[1])
        assert spaces[1].isdisjoint(spaces[2])
        assert all(len(t) == 500 for t in traces)

    def test_duplicates_not_lockstepped(self):
        a, b = duplicated_traces("mcf", 2, 300)
        assert [x - ADDRESS_SPACING for x in a.addresses] != \
               [x - 2 * ADDRESS_SPACING for x in b.addresses]

    def test_mixed_traces(self):
        traces = mixed_traces(["mcf", "lbm", "mcf"], 200, scale=0.1)
        assert [t.name for t in traces] == ["mcf", "lbm", "mcf"]


class TestPrefill:
    def test_reaches_targets_and_resets_stats(self):
        cache = build_cache(build_array("set-assoc", 128), "lru", "pf", 2,
                            targets=[96, 32])
        traces = [Trace(range(10_000)), Trace(range(10**6, 10**6 + 10_000))]
        prefill_to_targets(cache, traces)
        assert cache.actual_sizes[0] >= 90
        assert cache.actual_sizes[1] >= 30
        assert cache.stats.accesses == 0

    def test_small_footprint_budget_expires(self):
        """A thread whose footprint is below its target cannot fill it;
        prefill must terminate anyway."""
        cache = build_cache(build_array("set-assoc", 128), "lru", "pf", 2,
                            targets=[100, 28])
        traces = [Trace([1, 2, 3]), Trace(range(10**6, 10**6 + 1000))]
        prefill_to_targets(cache, traces, budget_per_line=2)
        assert cache.actual_sizes[0] == 3

    def test_opt_ranking_supported(self):
        cache = PartitionedCache(FullyAssociativeArray(32), OPTRanking(),
                                 PartitioningFirstScheme(), 1)
        prefill_to_targets(cache, [Trace(range(100))])
        assert cache.actual_sizes[0] == 32


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2].replace(" ", "-") or "-" in lines[2]
        assert "2.5" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary([0.0, 0.5, 1.0], [0.0, 0.6, 1.0],
                                  points=(0.5,))
        assert "F(0.50)=0.600" in text

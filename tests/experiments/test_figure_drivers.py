"""Smoke-level tests of every figure driver: each runs its tiny config and
must reproduce the figure's defining qualitative property."""

import math

import pytest

from repro.experiments import (
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Fig7Config,
    Fig8Config,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.fig7 import vantage_can_run


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(Fig2Config.smoke())

    def test_aef_decreases_with_partitions(self, result):
        """Fig. 2a: PF associativity degrades as N grows."""
        series = result.points["mcf"]
        ns = sorted(series)
        aefs = [series[n].aef for n in ns]
        assert aefs[0] > 0.85
        assert aefs[-1] < aefs[0] - 0.2

    def test_mcf_misses_increase_lbm_flat(self, result):
        """Fig. 2b: the sensitive benchmark suffers; streaming does not."""
        mcf = result.normalized_misses("mcf")
        lbm = result.normalized_misses("lbm")
        top_n = max(mcf)
        assert mcf[top_n] > 1.1
        assert abs(lbm[top_n] - 1.0) < 0.1

    def test_ipc_mirrors_misses(self, result):
        """Fig. 2c: IPC of the sensitive benchmark drops with N."""
        mcf = result.normalized_ipc("mcf")
        assert mcf[max(mcf)] < 0.97

    def test_cdf_recorded_for_cdf_benchmark(self, result):
        series = result.points["mcf"]
        assert any(p.cdf is not None for p in series.values())

    def test_format(self, result):
        text = format_fig2(result)
        assert "Figure 2a" in text and "Figure 2c" in text


class TestFig3:
    def test_values_and_feasibility(self):
        result = run_fig3(Fig3Config.smoke())
        assert result.max_solver_error < 1e-6
        assert result.holdable_at_1pct == pytest.approx(0.75, abs=0.01)
        alpha = result.alphas[0.9][0.2]
        assert alpha == pytest.approx(2.835, abs=0.01)
        text = format_fig3(result)
        assert "alpha_2" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(Fig4Config.smoke())

    def test_fs_beats_pf_on_small_partition(self, result):
        by = {(m.scheme, m.split): m for m in result.measurements}
        fs = by[("fs", (0.9, 0.1))]
        pf = by[("pf", (0.9, 0.1))]
        # The 10% partition: FS keeps high associativity, PF collapses.
        assert fs.aef[1] > pf.aef[1]

    def test_unscaled_partition_near_analytic(self, result):
        fs = next(m for m in result.measurements if m.scheme == "fs")
        assert fs.aef[0] == pytest.approx(fs.analytic_aef[0], abs=0.05)
        assert fs.alphas[0] == 1.0

    def test_format(self, result):
        assert "Figure 4" in format_fig4(result)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(Fig5Config.smoke())

    def test_pf_sizes_precisely(self, result):
        assert result.mad_of("pf", 0.5) < 1.5

    def test_fs_trades_bounded_deviation(self, result):
        mad = result.mad_of("fs", 0.5)
        partition = result.config.num_lines // 2
        assert mad > result.mad_of("pf", 0.5)
        assert mad < 0.15 * partition

    def test_format(self, result):
        assert "Figure 5" in format_fig5(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(Fig6Config.smoke())

    def test_sensitive_vs_streaming(self, result):
        size = result.config.cache_sizes_lines[0]
        assert result.speedup("lru", "mcf", size) > \
            result.speedup("lru", "lbm", size)
        assert result.speedup("lru", "lbm", size) == pytest.approx(1.0,
                                                                   abs=0.02)

    def test_format(self, result):
        assert "fully-associative" in format_fig6(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(Fig7Config.smoke())

    def test_fs_holds_target_with_high_aef(self, result):
        config = result.config
        n = config.subject_counts[0]
        fs = result.cells[("fs-feedback", "lru")][n]
        pf = result.cells[("pf", "lru")][n]
        assert fs.occupancy_ratio > 0.8
        assert fs.subject_aef > pf.subject_aef

    def test_format(self, result):
        assert "Figure 7a" in format_fig7(result)

    def test_vantage_skip_rule(self):
        config = Fig7Config.paper()
        assert vantage_can_run(config, 1)
        assert not vantage_can_run(config, 31)   # 97% > 90% managed


class TestFig8:
    def test_sweep_produces_all_cells(self):
        config = Fig8Config.smoke()
        result = run_fig8(config)
        for l in config.interval_lengths:
            assert (l, config.default_ratio) in result.cells
        for r in config.changing_ratios:
            assert (config.default_interval, r) in result.cells
        cell = result.cells[(16, 2.0)]
        assert cell.mad >= 0
        assert not math.isnan(cell.subject_ipc)
        assert "Figure 8a" in format_fig8(result)


class TestResizingExtension:
    def test_smoke(self):
        from repro.experiments import ResizingConfig, format_resizing, \
            run_resizing
        result = run_resizing(ResizingConfig.smoke())
        fs = result.cells["fs-feedback"]
        way = result.cells["way-partition"]
        assert fs.flushed_lines == 0
        assert way.flushed_lines > 0
        assert "smooth resizing" in format_resizing(result)

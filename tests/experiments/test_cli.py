"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import FIGURES, main, render_table_ii


def test_figures_registry_complete():
    assert set(FIGURES) == {f"fig{i}" for i in range(2, 9)}


def test_table_ii_command(capsys):
    assert main(["tableII"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "32 cores" in out


def test_fig3_smoke(capsys):
    assert main(["fig3", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "alpha_2" in out
    assert "[fig3 @ smoke:" in out


def test_fig5_smoke(capsys):
    assert main(["fig5", "--scale", "smoke"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["fig3", "--scale", "huge"])


def test_render_table_ii_rows():
    text = render_table_ii()
    for key in ("Cores", "L1 $s", "L2 $", "MCU"):
        assert key in text

"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import main, render_table_ii
from repro.experiments.registry import (
    experiment_names,
    register_experiment,
    unregister,
)


def test_cli_choices_track_the_registry(capsys):
    """Every registered experiment is a CLI choice (plus "all")."""
    for name in list(experiment_names()) + ["all"]:
        with pytest.raises(SystemExit):
            main([name, "--scale", "bogus"])
        err = capsys.readouterr().err
        # The rejection is the bogus --scale, not the experiment name —
        # proving the name itself passed choice validation.
        assert "invalid choice: 'bogus'" in err
        assert f"invalid choice: '{name}'" not in err


def test_table_ii_command(capsys):
    assert main(["tableII", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "32 cores" in out


def test_fig3_smoke(capsys):
    assert main(["fig3", "--scale", "smoke", "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "alpha_2" in captured.out
    # Timing and progress are stderr-only so stdout stays byte-stable.
    assert "[fig3 @ smoke:" in captured.err
    assert "[fig3 @ smoke:" not in captured.out


def test_fig5_smoke(capsys):
    assert main(["fig5", "--scale", "smoke", "--no-cache"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_fig5_smoke_parallel_cached(capsys, tmp_path):
    argv = ["fig5", "--scale", "smoke", "--jobs", "2",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "cached" not in first.err
    assert main(argv) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "cached" in second.err


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["fig3", "--scale", "huge"])


def test_configuration_error_is_one_clean_line(capsys):
    """A bad config exits 2 with a single-line error, not a traceback."""

    class BrokenConfig:
        @classmethod
        def smoke(cls):
            from repro.errors import ConfigurationError
            raise ConfigurationError("num_partitions must be positive")

        scaled = paper = smoke

    register_experiment(name="figBroken", config_cls=BrokenConfig,
                        reduce=lambda config, results: results,
                        format=str)(lambda config: [])
    try:
        assert main(["figBroken", "--scale", "smoke", "--no-cache"]) == 2
        captured = capsys.readouterr()
        assert captured.err.strip() == (
            "error: figBroken: num_partitions must be positive")
        assert "Traceback" not in captured.err
    finally:
        unregister("figBroken")


def test_render_table_ii_rows():
    text = render_table_ii()
    for key in ("Cores", "L1 $s", "L2 $", "MCU"):
        assert key in text

"""Golden-output regression: formatted experiment output is frozen.

``golden/smoke_output_sha256.json`` pins the sha256 of every experiment's
formatted smoke-scale output, captured on the pre-LineTable per-line-object
implementation.  Matching these hashes proves the array-backed access
kernel (LineTable + event bus + victim kernels) reproduces the historical
pipeline *byte for byte* — same victims, same RNG draw sequences, same
float arithmetic — not merely statistically similar results.

If a deliberate behaviour change ever invalidates a hash, regenerate with::

    PYTHONPATH=src python -c "
    import hashlib, json
    from repro.experiments import experiment_names, get_experiment
    print(json.dumps({n: hashlib.sha256(
        (lambda s: s.format(s.run(s.config('smoke'))))(get_experiment(n))
        .encode('utf-8')).hexdigest() for n in experiment_names()}, indent=2))"

and justify the change in the commit message.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments import experiment_names, get_experiment

GOLDEN = Path(__file__).parent / "golden" / "smoke_output_sha256.json"


def _golden_hashes():
    return json.loads(GOLDEN.read_text())


def test_golden_file_covers_every_registered_experiment():
    assert sorted(_golden_hashes()) == sorted(experiment_names())


@pytest.mark.parametrize("name", sorted(json.loads(GOLDEN.read_text())))
def test_smoke_output_matches_golden_hash(name):
    spec = get_experiment(name)
    output = spec.format(spec.run(spec.config("smoke")))
    digest = hashlib.sha256(output.encode("utf-8")).hexdigest()
    assert digest == _golden_hashes()[name], (
        f"{name} smoke output drifted from the pre-refactor golden hash; "
        f"victim selection, RNG consumption or float arithmetic changed")

"""Experiment registry round-trip."""

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    iter_experiments,
    register_experiment,
)
from repro.experiments.fig5 import Fig5Config, format_fig5, run_fig5
from repro.experiments.registry import register, unregister
from repro.experiments.tableii import TableIIConfig
from repro.runner import Cell


def test_all_paper_artifacts_registered():
    assert experiment_names() == [
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "resizing", "scenarios", "tableII"]


def test_iter_experiments_sorted():
    assert [s.name for s in iter_experiments()] == experiment_names()


def test_get_experiment_unknown_lists_registered():
    with pytest.raises(KeyError, match="fig2"):
        get_experiment("fig99")


def test_spec_matches_legacy_figures_triple():
    """Registry lookup supplies exactly what the old FIGURES dict did:
    the config class, a runner and the formatter — with identical output."""
    spec = get_experiment("fig5")
    assert spec.config_cls is Fig5Config
    assert spec.format is format_fig5
    config = spec.config("smoke")
    assert config == Fig5Config.smoke()
    assert spec.format(spec.run(config)) == format_fig5(run_fig5(config))


def test_config_rejects_unknown_scale():
    with pytest.raises(ConfigurationError, match="warp"):
        get_experiment("fig3").config("warp")


def test_tableii_is_a_registered_spec():
    spec = get_experiment("tableII")
    assert spec.config_cls is TableIIConfig
    assert "32 cores" in spec.format(spec.run(spec.config("smoke")))


def test_duplicate_registration_rejected():
    spec = get_experiment("fig2")
    with pytest.raises(ConfigurationError, match="already registered"):
        register(spec)
    # replace=True is the escape hatch (idempotent here).
    register(spec, replace=True)


def test_register_unregister_round_trip():
    @register_experiment(name="figTest", config_cls=Fig5Config,
                         reduce=lambda config, results: sum(results),
                         format=str, description="test-only")
    def cells_fig_test(config):
        return [Cell("figTest", (i,), _double, (config, i)) for i in range(3)]

    try:
        spec = get_experiment("figTest")
        assert isinstance(spec, ExperimentSpec)
        assert spec.description == "test-only"
        assert spec.run(Fig5Config.smoke()) == 6
    finally:
        unregister("figTest")
    with pytest.raises(KeyError):
        get_experiment("figTest")


def _double(config, i):
    return 2 * i


def test_figures_alias_is_gone():
    """The deprecated FIGURES mapping was removed with the deprecation
    cycle; the registry is the only way to enumerate experiments."""
    import repro.experiments.__main__ as cli

    assert not hasattr(cli, "FIGURES")
    assert "FIGURES" not in cli.__all__


def test_registry_access_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        get_experiment("fig5")
        experiment_names()
